//! The five evaluated request types (Table V) and raw volatility scoring.

use crate::benchmarks::{combined_catalog, sn, tt, Benchmark, ServiceCatalog};
use crate::dag::ServiceDag;
use serde::{Deserialize, Serialize};

/// Identifier of a request type within a [`RequestCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestTypeId(pub u32);

/// The paper's three request-volatility categories (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VolatilityClass {
    /// `V_r ≤ 0.3` — e.g. timeline reads.
    Low,
    /// `0.3 < V_r < 0.7` — e.g. basicSearch.
    Mid,
    /// `V_r ≥ 0.7` — e.g. compose-post, getCheapest.
    High,
}

impl VolatilityClass {
    /// Classifies a raw `V_r` value using Algorithm 1's band boundaries.
    pub fn from_vr(vr: f64) -> VolatilityClass {
        if vr <= 0.3 {
            VolatilityClass::Low
        } else if vr < 0.7 {
            VolatilityClass::Mid
        } else {
            VolatilityClass::High
        }
    }
}

/// Normalization factor α of the volatility formula.
///
/// The paper leaves α unspecified beyond "normalized value between (0,1)".
/// The per-service product `I·S·C` ranges over `[1, 27]`; we pick `α = 1/18`
/// so that a request averaging mid-level terms (`2·3·3`) saturates at
/// `V_r = 1`, which places the five Table V request types into their
/// published bands (asserted in tests below).
pub const VOLATILITY_ALPHA: f64 = 1.0 / 18.0;

/// Raw request volatility `V_r = α · Σᵢ Iᵢ·Sᵢ·Cᵢ / n` over the DAG's
/// invoked microservices, clamped to `(0, 1]`.
pub fn raw_volatility(dag: &ServiceDag, catalog: &ServiceCatalog) -> f64 {
    if dag.is_empty() {
        return 0.0;
    }
    let sum: f64 = dag
        .nodes()
        .iter()
        .map(|n| {
            let s = catalog.get(n.service);
            (s.inner.level() as f64) * (s.sensitivity.level() as f64) * (s.comm.level() as f64)
        })
        .sum();
    (VOLATILITY_ALPHA * sum / dag.len() as f64).min(1.0)
}

/// One evaluated request type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestType {
    /// Dense id within the catalog.
    pub id: RequestTypeId,
    /// Paper name (Table V), e.g. `compose-post`.
    pub name: String,
    /// Source benchmark.
    pub benchmark: Benchmark,
    /// Invocation DAG.
    pub dag: ServiceDag,
    /// End-to-end SLO in milliseconds (violation ⇒ QoS violation, Fig 10).
    pub slo_ms: f64,
    /// Precomputed `V_r`.
    pub volatility: f64,
}

impl RequestType {
    /// Volatility band of this request type.
    pub fn class(&self) -> VolatilityClass {
        VolatilityClass::from_vr(self.volatility)
    }

    /// Ideal latency (ms): critical path of nominal execution times, no
    /// queueing, no communication.
    pub fn ideal_latency_ms(&self, catalog: &ServiceCatalog) -> f64 {
        self.dag.critical_path(|i| {
            let node = self.dag.node(i);
            catalog.get(node.service).base_ms * node.work_factor
        })
    }
}

/// The full evaluation catalog: both benchmark service sets plus the five
/// request types of Table V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestCatalog {
    /// Combined service templates (SocialNetwork + TrainTicket).
    pub services: ServiceCatalog,
    /// The five request types.
    pub requests: Vec<RequestType>,
}

/// SLO = `SLO_FACTOR ×` ideal latency; tail-latency SLOs in interactive
/// services are conventionally a small multiple of the median.
pub const SLO_FACTOR: f64 = 5.0;

impl RequestCatalog {
    /// Builds the paper's evaluation catalog.
    pub fn paper() -> Self {
        let services = combined_catalog();
        let mut requests = Vec::new();
        let mut add = |name: &str, benchmark: Benchmark, dag: ServiceDag| {
            let volatility = raw_volatility(&dag, &services);
            let id = RequestTypeId(requests.len() as u32);
            let mut rt =
                RequestType { id, name: name.to_string(), benchmark, dag, slo_ms: 0.0, volatility };
            rt.slo_ms = rt.ideal_latency_ms(&services) * SLO_FACTOR;
            requests.push(rt);
        };

        // -- compose-post (SocialNetwork, High V_r) ----------------------
        // nginx → compose → {text → {url-shorten, user-mention}, media,
        // unique-id, user} → post-storage-write → {user-timeline-write,
        // home-timeline-write}
        let mut d = ServiceDag::new();
        let nginx = d.add_node(sn::NGINX, 1.0);
        let compose = d.add_node(sn::COMPOSE_POST, 1.0);
        let text = d.add_node(sn::TEXT, 1.2);
        let media = d.add_node(sn::MEDIA, 1.4);
        let uid = d.add_node(sn::UNIQUE_ID, 1.0);
        let user = d.add_node(sn::USER, 1.0);
        let url = d.add_node(sn::URL_SHORTEN, 1.0);
        let mention = d.add_node(sn::USER_MENTION, 1.2);
        let storage = d.add_node(sn::POST_STORAGE_WRITE, 1.3);
        let utl = d.add_node(sn::USER_TIMELINE_WRITE, 1.0);
        let htl = d.add_node(sn::HOME_TIMELINE_WRITE, 1.2);
        d.add_edge(nginx, compose);
        for &mid in &[text, media, uid, user] {
            d.add_edge(compose, mid);
        }
        d.add_edge(text, url);
        d.add_edge(text, mention);
        for &pre in &[url, mention, media, uid, user] {
            d.add_edge(pre, storage);
        }
        d.add_edge(storage, utl);
        d.add_edge(storage, htl);
        add("compose-post", Benchmark::SocialNetwork, d);

        // -- getCheapest (TrainTicket, High V_r: advanced search) --------
        // ui → travel → ticketinfo → {price, seat} → order
        let mut d = ServiceDag::new();
        let ui = d.add_node(tt::UI_DASHBOARD, 1.0);
        let travel = d.add_node(tt::TRAVEL, 1.8);
        let info = d.add_node(tt::TICKETINFO, 1.5);
        let price = d.add_node(tt::PRICE, 1.4);
        let seat = d.add_node(tt::SEAT, 1.3);
        let order = d.add_node(tt::ORDER, 1.6);
        d.add_edge(ui, travel);
        d.add_edge(travel, info);
        d.add_edge(info, price);
        d.add_edge(info, seat);
        d.add_edge(price, order);
        d.add_edge(seat, order);
        add("getCheapest", Benchmark::TrainTicket, d);

        // -- basicSearch (TrainTicket, Mid V_r) --------------------------
        // ui → basic → {station, travel → ticketinfo}
        let mut d = ServiceDag::new();
        let ui = d.add_node(tt::UI_DASHBOARD, 1.0);
        let basic = d.add_node(tt::BASIC, 1.0);
        let station = d.add_node(tt::STATION, 1.0);
        let travel = d.add_node(tt::TRAVEL, 1.0);
        let info = d.add_node(tt::TICKETINFO, 1.0);
        d.add_edge(ui, basic);
        d.add_edge(basic, station);
        d.add_edge(basic, travel);
        d.add_edge(travel, info);
        add("basicSearch", Benchmark::TrainTicket, d);

        // -- read-home-timeline (SocialNetwork, Low V_r) ------------------
        // nginx → home-timeline-read → {social-graph, post-storage-read}
        let mut d = ServiceDag::new();
        let nginx = d.add_node(sn::NGINX, 1.0);
        let htl = d.add_node(sn::HOME_TIMELINE_READ, 1.0);
        let graph = d.add_node(sn::SOCIAL_GRAPH, 1.0);
        let storage = d.add_node(sn::POST_STORAGE_READ, 1.0);
        d.add_edge(nginx, htl);
        d.add_edge(htl, graph);
        d.add_edge(htl, storage);
        add("read-home-timeline", Benchmark::SocialNetwork, d);

        // -- read-user-timeline (SocialNetwork, Low V_r) ------------------
        let mut d = ServiceDag::new();
        let nginx = d.add_node(sn::NGINX, 1.0);
        let utl = d.add_node(sn::USER_TIMELINE_READ, 1.0);
        let storage = d.add_node(sn::POST_STORAGE_READ, 1.0);
        d.add_edge(nginx, utl);
        d.add_edge(utl, storage);
        add("read-user-timeline", Benchmark::SocialNetwork, d);

        RequestCatalog { services, requests }
    }

    /// Request type by id.
    pub fn request(&self, id: RequestTypeId) -> &RequestType {
        &self.requests[id.0 as usize]
    }

    /// Request type by paper name.
    pub fn request_by_name(&self, name: &str) -> Option<&RequestType> {
        self.requests.iter().find(|r| r.name == name)
    }

    /// Ids of all request types in a volatility class (Table V rows).
    pub fn requests_in_class(&self, class: VolatilityClass) -> Vec<RequestTypeId> {
        self.requests.iter().filter(|r| r.class() == class).map(|r| r.id).collect()
    }

    /// A mix giving each volatility *category* equal weight, and each
    /// request type equal weight within its category ("different types of
    /// requests in one category take up the same portion", Section IV).
    pub fn balanced_mix(&self) -> Vec<(RequestTypeId, f64)> {
        let classes = [VolatilityClass::Low, VolatilityClass::Mid, VolatilityClass::High];
        let mut mix = Vec::new();
        for class in classes {
            let ids = self.requests_in_class(class);
            if ids.is_empty() {
                continue;
            }
            let w = 1.0 / (classes.len() as f64 * ids.len() as f64);
            for id in ids {
                mix.push((id, w));
            }
        }
        mix
    }

    /// A mix containing only one volatility class, types equally weighted
    /// (the separated streams of Fig 13).
    pub fn class_mix(&self, class: VolatilityClass) -> Vec<(RequestTypeId, f64)> {
        let ids = self.requests_in_class(class);
        let w = 1.0 / ids.len().max(1) as f64;
        ids.into_iter().map(|id| (id, w)).collect()
    }

    /// A mix with `high_ratio` of high-volatility requests and the rest
    /// split evenly between low and mid (the Fig 14 ratio sweep).
    pub fn high_ratio_mix(&self, high_ratio: f64) -> Vec<(RequestTypeId, f64)> {
        let high_ratio = high_ratio.clamp(0.0, 1.0);
        let mut mix = Vec::new();
        let high = self.requests_in_class(VolatilityClass::High);
        for &id in &high {
            mix.push((id, high_ratio / high.len() as f64));
        }
        let rest = 1.0 - high_ratio;
        let low = self.requests_in_class(VolatilityClass::Low);
        let mid = self.requests_in_class(VolatilityClass::Mid);
        for &id in &low {
            mix.push((id, rest / 2.0 / low.len() as f64));
        }
        for &id in &mid {
            mix.push((id, rest / 2.0 / mid.len() as f64));
        }
        mix.retain(|&(_, w)| w > 0.0);
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_five_requests() {
        let cat = RequestCatalog::paper();
        assert_eq!(cat.requests.len(), 5);
        for r in &cat.requests {
            assert!(r.dag.is_valid(), "{} DAG has a cycle", r.name);
            assert!(r.slo_ms > 0.0);
            assert!(r.volatility > 0.0 && r.volatility <= 1.0);
        }
    }

    /// The heart of Table V: each request type must land in its paper band.
    #[test]
    fn table5_volatility_bands() {
        let cat = RequestCatalog::paper();
        let expect = [
            ("compose-post", VolatilityClass::High),
            ("getCheapest", VolatilityClass::High),
            ("basicSearch", VolatilityClass::Mid),
            ("read-home-timeline", VolatilityClass::Low),
            ("read-user-timeline", VolatilityClass::Low),
        ];
        for (name, class) in expect {
            let r = cat.request_by_name(name).unwrap();
            assert_eq!(
                r.class(),
                class,
                "{name}: V_r = {:.3} classified {:?}, paper says {:?}",
                r.volatility,
                r.class(),
                class
            );
        }
    }

    #[test]
    fn class_queries() {
        let cat = RequestCatalog::paper();
        assert_eq!(cat.requests_in_class(VolatilityClass::High).len(), 2);
        assert_eq!(cat.requests_in_class(VolatilityClass::Mid).len(), 1);
        assert_eq!(cat.requests_in_class(VolatilityClass::Low).len(), 2);
    }

    #[test]
    fn balanced_mix_sums_to_one_with_equal_category_mass() {
        let cat = RequestCatalog::paper();
        let mix = cat.balanced_mix();
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for class in [VolatilityClass::Low, VolatilityClass::Mid, VolatilityClass::High] {
            let mass: f64 = mix
                .iter()
                .filter(|(id, _)| cat.request(*id).class() == class)
                .map(|(_, w)| w)
                .sum();
            assert!((mass - 1.0 / 3.0).abs() < 1e-9, "{class:?} mass {mass}");
        }
    }

    #[test]
    fn high_ratio_mix_controls_high_mass() {
        let cat = RequestCatalog::paper();
        for ratio in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mix = cat.high_ratio_mix(ratio);
            let total: f64 = mix.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "ratio {ratio}: total {total}");
            let high_mass: f64 = mix
                .iter()
                .filter(|(id, _)| cat.request(*id).class() == VolatilityClass::High)
                .map(|(_, w)| w)
                .sum();
            assert!((high_mass - ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn ideal_latency_is_critical_path() {
        let cat = RequestCatalog::paper();
        let r = cat.request_by_name("read-user-timeline").unwrap();
        // nginx(5) → utl-read(20) → storage-read(12.5) = 37.5ms chain.
        assert!((r.ideal_latency_ms(&cat.services) - 37.5).abs() < 1e-9);
        assert!((r.slo_ms - 187.5).abs() < 1e-9);
    }

    #[test]
    fn volatility_of_empty_dag_is_zero() {
        let cat = RequestCatalog::paper();
        assert_eq!(raw_volatility(&ServiceDag::new(), &cat.services), 0.0);
    }

    #[test]
    fn volatility_band_boundaries() {
        assert_eq!(VolatilityClass::from_vr(0.3), VolatilityClass::Low);
        assert_eq!(VolatilityClass::from_vr(0.31), VolatilityClass::Mid);
        assert_eq!(VolatilityClass::from_vr(0.69), VolatilityClass::Mid);
        assert_eq!(VolatilityClass::from_vr(0.7), VolatilityClass::High);
    }

    #[test]
    fn high_vr_requests_use_more_volatile_services() {
        let cat = RequestCatalog::paper();
        let hi = cat.request_by_name("compose-post").unwrap().volatility;
        let lo = cat.request_by_name("read-home-timeline").unwrap().volatility;
        assert!(hi > 2.0 * lo, "high {hi} vs low {lo}");
    }
}
