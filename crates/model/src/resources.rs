//! Three-dimensional resource vectors: CPU, memory, IO bandwidth.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// The resource types the paper monitors and controls (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU cores (controlled via cgroups `cpuset` in the paper).
    Cpu,
    /// Memory, MB (cgroups `memory.limit_in_bytes`).
    Memory,
    /// IO bandwidth, MB/s (cgroups `net_cls`).
    Io,
}

impl ResourceKind {
    /// All three kinds, in display order.
    pub const ALL: [ResourceKind; 3] = [ResourceKind::Cpu, ResourceKind::Memory, ResourceKind::Io];
}

/// A quantity of each resource kind: CPU cores, memory MB, IO MB/s.
///
/// Used both as machine *capacity* and microservice *demand*. All arithmetic
/// is component-wise.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    /// CPU cores (fractional allowed: containers get core shares).
    pub cpu: f64,
    /// Memory in MB.
    pub mem: f64,
    /// IO bandwidth in MB/s.
    pub io: f64,
}

impl ResourceVector {
    /// All-zero vector.
    pub const ZERO: ResourceVector = ResourceVector { cpu: 0.0, mem: 0.0, io: 0.0 };

    /// Builds a vector from components.
    pub fn new(cpu: f64, mem: f64, io: f64) -> Self {
        ResourceVector { cpu, mem, io }
    }

    /// Accesses one component by kind.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => self.cpu,
            ResourceKind::Memory => self.mem,
            ResourceKind::Io => self.io,
        }
    }

    /// Mutable access to one component by kind.
    pub fn get_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        match kind {
            ResourceKind::Cpu => &mut self.cpu,
            ResourceKind::Memory => &mut self.mem,
            ResourceKind::Io => &mut self.io,
        }
    }

    /// True when every component of `self` fits within `capacity`
    /// (with a small epsilon for float accumulation).
    pub fn fits_within(&self, capacity: &ResourceVector) -> bool {
        const EPS: f64 = 1e-9;
        self.cpu <= capacity.cpu + EPS
            && self.mem <= capacity.mem + EPS
            && self.io <= capacity.io + EPS
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu: self.cpu.min(other.cpu),
            mem: self.mem.min(other.mem),
            io: self.io.min(other.io),
        }
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu: self.cpu.max(other.cpu),
            mem: self.mem.max(other.mem),
            io: self.io.max(other.io),
        }
    }

    /// Clamps every component to be ≥ 0.
    pub fn clamp_non_negative(&self) -> ResourceVector {
        ResourceVector { cpu: self.cpu.max(0.0), mem: self.mem.max(0.0), io: self.io.max(0.0) }
    }

    /// The smallest per-component ratio `self/demand` — i.e. the fraction of
    /// `demand` that `self` can satisfy. Components with zero demand are
    /// ignored; returns 1.0 when demand is all-zero. This is the capping
    /// fraction `f` fed into the sensitivity model (Fig 3c).
    pub fn satisfaction_of(&self, demand: &ResourceVector) -> f64 {
        let mut frac = 1.0f64;
        for kind in ResourceKind::ALL {
            let d = demand.get(kind);
            if d > 0.0 {
                frac = frac.min((self.get(kind) / d).max(0.0));
            }
        }
        frac.min(1.0)
    }

    /// Mean of the per-component utilization fractions against `capacity`,
    /// the per-node term of the paper's cluster-utilization metric
    /// `U = Σ(u_cpu + u_mem + u_io) / (#resource_types · #nodes)`.
    pub fn utilization_against(&self, capacity: &ResourceVector) -> f64 {
        let mut total = 0.0;
        for kind in ResourceKind::ALL {
            let cap = capacity.get(kind);
            if cap > 0.0 {
                total += (self.get(kind) / cap).clamp(0.0, 1.0);
            }
        }
        total / ResourceKind::ALL.len() as f64
    }

    /// True if any component is negative beyond float epsilon.
    pub fn has_negative(&self) -> bool {
        const EPS: f64 = -1e-9;
        self.cpu < EPS || self.mem < EPS || self.io < EPS
    }
}

/// Per-resource exec/suspend demand ratios — the metric of Fig 3a. Unlike
/// [`ResourceVector`] this is a dimensionless profile, so it gets its own
/// type to avoid unit confusion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceIntensityProfile {
    /// CPU exec/suspend ratio.
    pub cpu: f64,
    /// Memory exec/suspend ratio.
    pub mem: f64,
    /// IO exec/suspend ratio.
    pub io: f64,
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, o: ResourceVector) -> ResourceVector {
        ResourceVector { cpu: self.cpu + o.cpu, mem: self.mem + o.mem, io: self.io + o.io }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, o: ResourceVector) {
        self.cpu += o.cpu;
        self.mem += o.mem;
        self.io += o.io;
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    fn sub(self, o: ResourceVector) -> ResourceVector {
        ResourceVector { cpu: self.cpu - o.cpu, mem: self.mem - o.mem, io: self.io - o.io }
    }
}

impl SubAssign for ResourceVector {
    fn sub_assign(&mut self, o: ResourceVector) {
        self.cpu -= o.cpu;
        self.mem -= o.mem;
        self.io -= o.io;
    }
}

impl Mul<f64> for ResourceVector {
    type Output = ResourceVector;
    fn mul(self, k: f64) -> ResourceVector {
        ResourceVector { cpu: self.cpu * k, mem: self.mem * k, io: self.io * k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_access() {
        let mut v = ResourceVector::new(2.0, 512.0, 50.0);
        assert_eq!(v.get(ResourceKind::Cpu), 2.0);
        assert_eq!(v.get(ResourceKind::Memory), 512.0);
        *v.get_mut(ResourceKind::Io) = 75.0;
        assert_eq!(v.io, 75.0);
    }

    #[test]
    fn arithmetic_is_component_wise() {
        let a = ResourceVector::new(1.0, 100.0, 10.0);
        let b = ResourceVector::new(2.0, 200.0, 20.0);
        assert_eq!(a + b, ResourceVector::new(3.0, 300.0, 30.0));
        assert_eq!(b - a, a * 1.0);
        assert_eq!(a * 2.0, b);
    }

    #[test]
    fn fits_within_checks_all_components() {
        let cap = ResourceVector::new(4.0, 1000.0, 100.0);
        assert!(ResourceVector::new(4.0, 1000.0, 100.0).fits_within(&cap));
        assert!(!ResourceVector::new(4.1, 10.0, 10.0).fits_within(&cap));
        assert!(!ResourceVector::new(1.0, 1001.0, 10.0).fits_within(&cap));
        assert!(!ResourceVector::new(1.0, 10.0, 100.5).fits_within(&cap));
    }

    #[test]
    fn satisfaction_fraction() {
        let demand = ResourceVector::new(2.0, 100.0, 10.0);
        let half = ResourceVector::new(1.0, 100.0, 10.0);
        assert_eq!(half.satisfaction_of(&demand), 0.5);
        // Over-provisioning clamps at 1.
        let big = ResourceVector::new(8.0, 800.0, 80.0);
        assert_eq!(big.satisfaction_of(&demand), 1.0);
        // Zero-demand components are ignored.
        let io_only = ResourceVector::new(0.0, 0.0, 5.0);
        assert_eq!(ResourceVector::new(0.0, 0.0, 2.5).satisfaction_of(&io_only), 0.5);
        // All-zero demand trivially satisfied.
        assert_eq!(ResourceVector::ZERO.satisfaction_of(&ResourceVector::ZERO), 1.0);
    }

    #[test]
    fn utilization_average() {
        let cap = ResourceVector::new(4.0, 1000.0, 100.0);
        let used = ResourceVector::new(2.0, 500.0, 50.0);
        assert!((used.utilization_against(&cap) - 0.5).abs() < 1e-12);
        // Over-use clamps each component at 1.
        let over = ResourceVector::new(8.0, 2000.0, 200.0);
        assert_eq!(over.utilization_against(&cap), 1.0);
    }

    #[test]
    fn negative_detection_and_clamp() {
        let v = ResourceVector::new(1.0, -2.0, 3.0);
        assert!(v.has_negative());
        assert_eq!(v.clamp_non_negative(), ResourceVector::new(1.0, 0.0, 3.0));
        assert!(!ResourceVector::ZERO.has_negative());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_vec() -> impl Strategy<Value = ResourceVector> {
        (0.0f64..100.0, 0.0f64..10_000.0, 0.0f64..1_000.0)
            .prop_map(|(c, m, i)| ResourceVector::new(c, m, i))
    }

    proptest! {
        #[test]
        fn add_then_sub_roundtrips(a in arb_vec(), b in arb_vec()) {
            let r = (a + b) - b;
            prop_assert!((r.cpu - a.cpu).abs() < 1e-9);
            prop_assert!((r.mem - a.mem).abs() < 1e-6);
            prop_assert!((r.io - a.io).abs() < 1e-9);
        }

        #[test]
        fn satisfaction_in_unit_range(have in arb_vec(), demand in arb_vec()) {
            let f = have.satisfaction_of(&demand);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn scaled_demand_fits_iff_fraction(demand in arb_vec(), k in 0.1f64..1.0) {
            // If we have exactly k·demand, satisfaction is ~k (when demand nonzero).
            prop_assume!(demand.cpu > 0.01 && demand.mem > 0.01 && demand.io > 0.01);
            let have = demand * k;
            prop_assert!((have.satisfaction_of(&demand) - k).abs() < 1e-9);
        }
    }
}
