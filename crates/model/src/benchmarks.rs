//! Synthetic stand-ins for the two evaluated benchmark suites.
//!
//! * **TrainTicket** (TT) — the industrial railway-ticketing benchmark
//!   [Zhou et al., ICSE'18]. Fig 2 characterizes six of its services
//!   (`order`, `ticketinfo`, `travel`, `basic`, `seat`, `station`).
//! * **SocialNetwork** (SN) — the academic DeathStarBench application
//!   [Gan et al., ASPLOS'19]. Fig 3a characterizes twelve of its services.
//!
//! Each service template carries the paper's three characterization axes
//! (`I` inner variability, `S` capping sensitivity, `C` communication
//! level); the assignments below are calibrated so that the five request
//! types of Table V land in their published volatility bands (asserted by
//! tests in [`crate::requests`]).
//!
//! Read- and write-path behaviour of storage/timeline services differs
//! enough in the real benchmarks (cache hits vs fan-out writes) that they
//! get separate templates (`*-read` / `*-write`).

use crate::microservice::{
    CommClass, InnerVariability, Microservice, ResourceIntensity, ResourceSensitivity, ServiceId,
};
use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};

/// Which benchmark a service or request belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// TrainTicket (industry, railway ticketing).
    TrainTicket,
    /// SocialNetwork (academia, DeathStarBench).
    SocialNetwork,
}

/// A catalog of microservice templates, indexed by [`ServiceId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceCatalog {
    services: Vec<Microservice>,
}

impl ServiceCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        ServiceCatalog::default()
    }

    /// Adds a service; its `id` must equal its position.
    pub fn push(&mut self, svc: Microservice) {
        assert_eq!(svc.id.0 as usize, self.services.len(), "service ids must be dense");
        self.services.push(svc);
    }

    /// Looks up a service template.
    pub fn get(&self, id: ServiceId) -> &Microservice {
        &self.services[id.0 as usize]
    }

    /// Looks up by name (linear scan; catalogs are small).
    pub fn by_name(&self, name: &str) -> Option<&Microservice> {
        self.services.iter().find(|s| s.name == name)
    }

    /// All templates.
    pub fn services(&self) -> &[Microservice] {
        &self.services
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

// Shorthands for the table below.
use CommClass as C;
use InnerVariability as I;
use ResourceIntensity as RI;
use ResourceSensitivity as S;

/// Ids of the SocialNetwork services (offsets into the combined catalog).
pub mod sn {
    use crate::microservice::ServiceId;
    pub const NGINX: ServiceId = ServiceId(0);
    pub const COMPOSE_POST: ServiceId = ServiceId(1);
    pub const TEXT: ServiceId = ServiceId(2);
    pub const MEDIA: ServiceId = ServiceId(3);
    pub const UNIQUE_ID: ServiceId = ServiceId(4);
    pub const USER: ServiceId = ServiceId(5);
    pub const URL_SHORTEN: ServiceId = ServiceId(6);
    pub const USER_MENTION: ServiceId = ServiceId(7);
    pub const POST_STORAGE_WRITE: ServiceId = ServiceId(8);
    pub const POST_STORAGE_READ: ServiceId = ServiceId(9);
    pub const USER_TIMELINE_WRITE: ServiceId = ServiceId(10);
    pub const USER_TIMELINE_READ: ServiceId = ServiceId(11);
    pub const HOME_TIMELINE_WRITE: ServiceId = ServiceId(12);
    pub const HOME_TIMELINE_READ: ServiceId = ServiceId(13);
    pub const SOCIAL_GRAPH: ServiceId = ServiceId(14);
}

/// Ids of the TrainTicket services (offsets into the combined catalog).
pub mod tt {
    use crate::microservice::ServiceId;
    pub const UI_DASHBOARD: ServiceId = ServiceId(15);
    pub const BASIC: ServiceId = ServiceId(16);
    pub const STATION: ServiceId = ServiceId(17);
    pub const TRAVEL: ServiceId = ServiceId(18);
    pub const TICKETINFO: ServiceId = ServiceId(19);
    pub const ORDER: ServiceId = ServiceId(20);
    pub const SEAT: ServiceId = ServiceId(21);
    pub const PRICE: ServiceId = ServiceId(22);
    pub const ROUTE: ServiceId = ServiceId(23);
}

/// Builds the combined catalog of both benchmarks (SocialNetwork templates
/// first, TrainTicket second; ids match [`sn`] / [`tt`]).
pub fn combined_catalog() -> ServiceCatalog {
    let mut cat = ServiceCatalog::new();
    let rv = ResourceVector::new;
    // ---- SocialNetwork (ids 0–14) -------------------------------------
    // (id, name, demand(cpu cores, mem MB, io MB/s), base ms, I, S, C, intensity)
    let defs: Vec<Microservice> = vec![
        Microservice::new(
            0,
            "nginx-frontend",
            rv(0.5, 128.0, 30.0),
            5.0,
            I::Low,
            S::Moderate,
            C::Light,
            RI::Io,
        ),
        Microservice::new(
            1,
            "compose-post-service",
            rv(1.5, 512.0, 40.0),
            75.0,
            I::High,
            S::High,
            C::Heavy,
            RI::CpuIo,
        ),
        Microservice::new(
            2,
            "text-service",
            rv(1.0, 256.0, 10.0),
            25.0,
            I::Mid,
            S::High,
            C::Heavy,
            RI::Cpu,
        ),
        Microservice::new(
            3,
            "media-service",
            rv(1.5, 512.0, 120.0),
            62.5,
            I::High,
            S::High,
            C::Heavy,
            RI::CpuIo,
        ),
        Microservice::new(
            4,
            "unique-id-service",
            rv(0.2, 64.0, 2.0),
            2.5,
            I::Low,
            S::Moderate,
            C::Medium,
            RI::Cpu,
        ),
        Microservice::new(
            5,
            "user-service",
            rv(0.5, 256.0, 8.0),
            12.5,
            I::Low,
            S::Moderate,
            C::Medium,
            RI::Cpu,
        ),
        Microservice::new(
            6,
            "url-shorten-service",
            rv(0.4, 128.0, 5.0),
            10.0,
            I::Mid,
            S::Moderate,
            C::Medium,
            RI::Cpu,
        ),
        Microservice::new(
            7,
            "user-mention-service",
            rv(0.6, 192.0, 8.0),
            20.0,
            I::Mid,
            S::Moderate,
            C::Heavy,
            RI::Cpu,
        ),
        Microservice::new(
            8,
            "post-storage-write",
            rv(1.0, 768.0, 150.0),
            50.0,
            I::High,
            S::High,
            C::Heavy,
            RI::Io,
        ),
        Microservice::new(
            9,
            "post-storage-read",
            rv(0.5, 768.0, 40.0),
            12.5,
            I::Low,
            S::Moderate,
            C::Medium,
            RI::Io,
        ),
        Microservice::new(
            10,
            "user-timeline-write",
            rv(0.6, 384.0, 60.0),
            25.0,
            I::Mid,
            S::Moderate,
            C::Medium,
            RI::Io,
        ),
        Microservice::new(
            11,
            "user-timeline-read",
            rv(0.4, 384.0, 20.0),
            20.0,
            I::Low,
            S::Moderate,
            C::Light,
            RI::Io,
        ),
        Microservice::new(
            12,
            "home-timeline-write",
            rv(0.6, 384.0, 60.0),
            25.0,
            I::Mid,
            S::Moderate,
            C::Medium,
            RI::Io,
        ),
        Microservice::new(
            13,
            "home-timeline-read",
            rv(0.4, 384.0, 20.0),
            20.0,
            I::Low,
            S::Moderate,
            C::Light,
            RI::Io,
        ),
        Microservice::new(
            14,
            "social-graph-service",
            rv(0.5, 512.0, 15.0),
            15.0,
            I::Low,
            S::Moderate,
            C::Light,
            RI::Cpu,
        ),
        // ---- TrainTicket (ids 15–23) -----------------------------------
        Microservice::new(
            15,
            "ts-ui-dashboard",
            rv(0.5, 128.0, 25.0),
            7.5,
            I::Low,
            S::Moderate,
            C::Light,
            RI::Io,
        ),
        Microservice::new(
            16,
            "ts-basic-service",
            rv(0.8, 384.0, 20.0),
            37.5,
            I::Mid,
            S::Moderate,
            C::Medium,
            RI::Cpu,
        ),
        Microservice::new(
            17,
            "ts-station-service",
            rv(0.4, 256.0, 10.0),
            20.0,
            I::Low,
            S::Moderate,
            C::Medium,
            RI::Cpu,
        ),
        Microservice::new(
            18,
            "ts-travel-service",
            rv(1.2, 512.0, 30.0),
            62.5,
            I::Mid,
            S::High,
            C::Medium,
            RI::CpuIo,
        ),
        Microservice::new(
            19,
            "ts-ticketinfo-service",
            rv(0.8, 384.0, 25.0),
            30.0,
            I::Mid,
            S::Moderate,
            C::Medium,
            RI::Cpu,
        ),
        Microservice::new(
            20,
            "ts-order-service",
            rv(1.5, 768.0, 100.0),
            75.0,
            I::High,
            S::High,
            C::Heavy,
            RI::CpuIo,
        ),
        Microservice::new(
            21,
            "ts-seat-service",
            rv(0.8, 256.0, 40.0),
            37.5,
            I::Mid,
            S::High,
            C::Heavy,
            RI::Io,
        ),
        Microservice::new(
            22,
            "ts-price-service",
            rv(0.6, 256.0, 15.0),
            25.0,
            I::Mid,
            S::High,
            C::Heavy,
            RI::Cpu,
        ),
        Microservice::new(
            23,
            "ts-route-service",
            rv(0.5, 256.0, 10.0),
            20.0,
            I::Low,
            S::Moderate,
            C::Medium,
            RI::Cpu,
        ),
    ];
    for d in defs {
        cat.push(d);
    }
    cat
}

/// The twelve SocialNetwork service ids shown in Fig 3a (merging the
/// read/write template split back into the paper's twelve services).
pub fn sn_fig3a_services() -> Vec<ServiceId> {
    vec![
        sn::NGINX,
        sn::COMPOSE_POST,
        sn::TEXT,
        sn::MEDIA,
        sn::UNIQUE_ID,
        sn::USER,
        sn::URL_SHORTEN,
        sn::USER_MENTION,
        sn::POST_STORAGE_WRITE,
        sn::USER_TIMELINE_WRITE,
        sn::HOME_TIMELINE_READ,
        sn::SOCIAL_GRAPH,
    ]
}

/// The six TrainTicket services of Fig 2.
pub fn tt_fig2_services() -> Vec<ServiceId> {
    vec![tt::ORDER, tt::TICKETINFO, tt::TRAVEL, tt::BASIC, tt::SEAT, tt::STATION]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_dense_and_complete() {
        let cat = combined_catalog();
        assert_eq!(cat.len(), 24);
        for (i, s) in cat.services().iter().enumerate() {
            assert_eq!(s.id.0 as usize, i);
            assert!(s.base_ms > 0.0, "{} has no base time", s.name);
            assert!(s.demand.cpu > 0.0);
        }
    }

    #[test]
    fn id_constants_match_names() {
        let cat = combined_catalog();
        assert_eq!(cat.get(sn::COMPOSE_POST).name, "compose-post-service");
        assert_eq!(cat.get(sn::SOCIAL_GRAPH).name, "social-graph-service");
        assert_eq!(cat.get(tt::UI_DASHBOARD).name, "ts-ui-dashboard");
        assert_eq!(cat.get(tt::ORDER).name, "ts-order-service");
        assert_eq!(cat.get(tt::ROUTE).name, "ts-route-service");
    }

    #[test]
    fn by_name_lookup() {
        let cat = combined_catalog();
        assert_eq!(cat.by_name("ts-seat-service").unwrap().id, tt::SEAT);
        assert!(cat.by_name("no-such-service").is_none());
    }

    #[test]
    fn fig2_services_exist_with_expected_classes() {
        let cat = combined_catalog();
        let fig2 = tt_fig2_services();
        assert_eq!(fig2.len(), 6);
        // `order` is the paper's example of a high-variation service
        // ("execution time almost doubles in the worst case").
        assert_eq!(cat.get(tt::ORDER).inner, InnerVariability::High);
        assert_eq!(cat.get(tt::STATION).inner, InnerVariability::Low);
    }

    #[test]
    fn fig3a_has_twelve_services() {
        let ids = sn_fig3a_services();
        assert_eq!(ids.len(), 12);
        let cat = combined_catalog();
        for id in ids {
            assert!((id.0 as usize) < cat.len());
        }
    }

    #[test]
    fn memory_is_never_the_bottleneck_ratio() {
        // Fig 3a observation: the exec/suspend ratio for memory is the
        // smallest of the three resources for every service.
        let cat = combined_catalog();
        for s in cat.services() {
            let r = s.demand_ratio();
            assert!(r.mem <= r.cpu && r.mem <= r.io, "{}: memory ratio not smallest", s.name);
        }
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_rejected() {
        let mut cat = ServiceCatalog::new();
        cat.push(Microservice::new(
            3,
            "x",
            ResourceVector::new(1.0, 1.0, 1.0),
            1.0,
            I::Low,
            S::Less,
            C::Light,
            RI::Cpu,
        ));
    }
}
