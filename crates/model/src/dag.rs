//! Request DAGs over microservice templates.

use crate::microservice::ServiceId;
use serde::{Deserialize, Serialize};

/// One vertex of a request DAG: a microservice template plus the work
/// factor this request type induces on it (how much of the service's logic
/// the request triggers — the per-request component of Fig 2's spread).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DagNode {
    /// Which microservice template executes at this vertex.
    pub service: ServiceId,
    /// Multiplier on the service's nominal execution time for this request
    /// type (1.0 = nominal logic).
    pub work_factor: f64,
}

/// A request's invocation DAG (Fig 1(b)): vertices are microservices, edges
/// are caller→callee relationships. Execution follows topological order and
/// produces chain-structured sequences (Section I).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceDag {
    nodes: Vec<DagNode>,
    /// Edges as (caller, callee) node-index pairs.
    edges: Vec<(usize, usize)>,
}

impl ServiceDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        ServiceDag::default()
    }

    /// Adds a vertex running `service` with `work_factor`, returning its
    /// node index.
    pub fn add_node(&mut self, service: ServiceId, work_factor: f64) -> usize {
        self.nodes.push(DagNode { service, work_factor });
        self.nodes.len() - 1
    }

    /// Adds a caller→callee edge between node indices.
    ///
    /// # Panics
    /// Panics on out-of-range indices or self-loops.
    pub fn add_edge(&mut self, caller: usize, callee: usize) {
        assert!(caller < self.nodes.len() && callee < self.nodes.len(), "edge index out of range");
        assert_ne!(caller, callee, "self-loop");
        self.edges.push((caller, callee));
    }

    /// Number of vertices (`n` in the volatility formula).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no vertices.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Vertex data by index.
    pub fn node(&self, i: usize) -> &DagNode {
        &self.nodes[i]
    }

    /// All vertices.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// All edges as (caller, callee) index pairs.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Direct callers of node `i`.
    pub fn parents(&self, i: usize) -> Vec<usize> {
        self.parents_iter(i).collect()
    }

    /// Direct callers of node `i`, allocation-free. Same order as
    /// [`parents`](Self::parents) (edge insertion order) — the planning and
    /// healing hot loops walk dependencies per node per round, where the
    /// per-call `Vec` was pure overhead.
    pub fn parents_iter(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.iter().filter(move |&&(_, c)| c == i).map(|&(p, _)| p)
    }

    /// Direct callees of node `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        self.children_iter(i).collect()
    }

    /// Direct callees of node `i`, allocation-free (same order as
    /// [`children`](Self::children)).
    pub fn children_iter(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.iter().filter(move |&&(p, _)| p == i).map(|&(_, c)| c)
    }

    /// Vertices with no callers (request entry points).
    pub fn roots(&self) -> Vec<usize> {
        let mut has_parent = vec![false; self.nodes.len()];
        for &(_, c) in &self.edges {
            has_parent[c] = true;
        }
        (0..self.nodes.len()).filter(|&i| !has_parent[i]).collect()
    }

    /// Vertices with no callees.
    pub fn leaves(&self) -> Vec<usize> {
        let mut has_child = vec![false; self.nodes.len()];
        for &(p, _) in &self.edges {
            has_child[p] = true;
        }
        (0..self.nodes.len()).filter(|&i| !has_child[i]).collect()
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.nodes.len()];
        for &(_, c) in &self.edges {
            deg[c] += 1;
        }
        deg
    }

    /// Kahn topological sort. `None` if the graph has a cycle (and is thus
    /// not a valid request DAG). Ties break by lowest node index, so the
    /// order is deterministic.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.nodes.len();
        let mut deg = self.in_degrees();
        // children adjacency
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(p, c) in &self.edges {
            children[p].push(c);
        }
        // Min-index-first frontier for determinism.
        let mut frontier: Vec<usize> = (0..n).filter(|&i| deg[i] == 0).collect();
        frontier.sort_unstable_by(|a, b| b.cmp(a)); // pop from back = smallest
        let mut out = Vec::with_capacity(n);
        while let Some(i) = frontier.pop() {
            out.push(i);
            for &c in &children[i] {
                deg[c] -= 1;
                if deg[c] == 0 {
                    // Insert keeping frontier sorted descending.
                    let pos = frontier.partition_point(|&x| x > c);
                    frontier.insert(pos, c);
                }
            }
        }
        if out.len() == n {
            Some(out)
        } else {
            None
        }
    }

    /// True when the graph is acyclic.
    pub fn is_valid(&self) -> bool {
        self.topo_order().is_some()
    }

    /// All root→leaf paths: the paper's "`m` microservice chain choices
    /// `c_j = (s₁, s₂, …)`" extracted by topological traversal.
    ///
    /// Exponential in the worst case, but request DAGs are small (≤ ~15
    /// vertices in both benchmarks).
    pub fn chains(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for r in self.roots() {
            self.chains_from(r, &mut stack, &mut out);
        }
        out
    }

    fn chains_from(&self, i: usize, stack: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        stack.push(i);
        let kids = self.children(i);
        if kids.is_empty() {
            out.push(stack.clone());
        } else {
            for k in kids {
                self.chains_from(k, stack, out);
            }
        }
        stack.pop();
    }

    /// Length of the longest path weighted by `node_cost(i)` — with
    /// per-node nominal execution times this is the request's ideal
    /// (zero-contention, zero-communication) latency.
    pub fn critical_path(&self, mut node_cost: impl FnMut(usize) -> f64) -> f64 {
        let order = match self.topo_order() {
            Some(o) => o,
            None => return f64::INFINITY,
        };
        let mut dist = vec![0.0f64; self.nodes.len()];
        for &i in &order {
            let best_parent = self.parents(i).into_iter().map(|p| dist[p]).fold(0.0f64, f64::max);
            dist[i] = best_parent + node_cost(i);
        }
        dist.into_iter().fold(0.0, f64::max)
    }

    /// Builds a linear chain DAG `s₀ → s₁ → …` (the common microservice
    /// topology the paper's figures use).
    pub fn chain(services: &[(ServiceId, f64)]) -> ServiceDag {
        let mut dag = ServiceDag::new();
        let mut prev: Option<usize> = None;
        for &(sid, wf) in services {
            let n = dag.add_node(sid, wf);
            if let Some(p) = prev {
                dag.add_edge(p, n);
            }
            prev = Some(n);
        }
        dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> ServiceDag {
        // 0 → {1, 2} → 3
        let mut d = ServiceDag::new();
        for i in 0..4 {
            d.add_node(ServiceId(i), 1.0);
        }
        d.add_edge(0, 1);
        d.add_edge(0, 2);
        d.add_edge(1, 3);
        d.add_edge(2, 3);
        d
    }

    #[test]
    fn structure_queries() {
        let d = diamond();
        assert_eq!(d.roots(), vec![0]);
        assert_eq!(d.leaves(), vec![3]);
        assert_eq!(d.parents(3), vec![1, 2]);
        assert_eq!(d.children(0), vec![1, 2]);
        assert_eq!(d.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let d = diamond();
        let order = d.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (rank, &n) in order.iter().enumerate() {
                p[n] = rank;
            }
            p
        };
        for &(a, b) in d.edges() {
            assert!(pos[a] < pos[b], "edge {a}→{b} violated");
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let mut d = ServiceDag::new();
        d.add_node(ServiceId(0), 1.0);
        d.add_node(ServiceId(1), 1.0);
        d.add_edge(0, 1);
        d.add_edge(1, 0);
        assert!(d.topo_order().is_none());
        assert!(!d.is_valid());
    }

    #[test]
    fn chains_enumerates_all_paths() {
        let d = diamond();
        let mut chains = d.chains();
        chains.sort();
        assert_eq!(chains, vec![vec![0, 1, 3], vec![0, 2, 3]]);
    }

    #[test]
    fn chain_constructor_is_linear() {
        let d = ServiceDag::chain(&[(ServiceId(5), 1.0), (ServiceId(6), 2.0), (ServiceId(7), 1.0)]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.chains(), vec![vec![0, 1, 2]]);
        assert_eq!(d.node(1).work_factor, 2.0);
    }

    #[test]
    fn critical_path_takes_longest_branch() {
        let d = diamond();
        // Costs: node1 = 10, node2 = 30, others 1.
        let cp = d.critical_path(|i| match i {
            1 => 10.0,
            2 => 30.0,
            _ => 1.0,
        });
        assert_eq!(cp, 1.0 + 30.0 + 1.0);
    }

    #[test]
    fn empty_dag() {
        let d = ServiceDag::new();
        assert!(d.is_empty());
        assert!(d.is_valid());
        assert!(d.chains().is_empty());
        assert_eq!(d.critical_path(|_| 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut d = ServiceDag::new();
        d.add_node(ServiceId(0), 1.0);
        d.add_edge(0, 0);
    }

    #[test]
    fn multi_root_dag() {
        // Two independent entry services joining at 2 (fan-in).
        let mut d = ServiceDag::new();
        for i in 0..3 {
            d.add_node(ServiceId(i), 1.0);
        }
        d.add_edge(0, 2);
        d.add_edge(1, 2);
        assert_eq!(d.roots(), vec![0, 1]);
        let mut chains = d.chains();
        chains.sort();
        assert_eq!(chains, vec![vec![0, 2], vec![1, 2]]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Random DAG: edges only go from lower to higher indices (guaranteed
    /// acyclic), plus a shuffle of node labels through work factors.
    fn arb_dag() -> impl Strategy<Value = ServiceDag> {
        (2usize..12).prop_flat_map(|n| {
            let edges = prop::collection::vec((0..n, 0..n), 0..n * 2);
            edges.prop_map(move |raw| {
                let mut d = ServiceDag::new();
                for i in 0..n {
                    d.add_node(ServiceId(i as u32), 1.0);
                }
                for (a, b) in raw {
                    if a < b {
                        d.add_edge(a, b);
                    }
                }
                d
            })
        })
    }

    proptest! {
        #[test]
        fn topo_order_is_valid_linearization(d in arb_dag()) {
            let order = d.topo_order().expect("forward-edge DAGs are acyclic");
            prop_assert_eq!(order.len(), d.len());
            let mut pos = vec![0; d.len()];
            for (rank, &nd) in order.iter().enumerate() { pos[nd] = rank; }
            for &(a, b) in d.edges() {
                prop_assert!(pos[a] < pos[b]);
            }
        }

        #[test]
        fn every_chain_is_a_real_path(d in arb_dag()) {
            for chain in d.chains() {
                prop_assert!(!chain.is_empty());
                prop_assert!(d.roots().contains(&chain[0]));
                prop_assert!(d.leaves().contains(chain.last().unwrap()));
                for w in chain.windows(2) {
                    prop_assert!(d.edges().contains(&(w[0], w[1])));
                }
            }
        }

        #[test]
        fn critical_path_at_least_max_node(d in arb_dag()) {
            // With unit costs, the critical path is >= 1 and <= n.
            let cp = d.critical_path(|_| 1.0);
            prop_assert!(cp >= 1.0);
            prop_assert!(cp <= d.len() as f64);
        }
    }
}
