//! # mlp-model — microservice application model
//!
//! Models everything the paper's Section II characterizes:
//!
//! * **resource demand** per microservice ([`ResourceVector`], CPU / memory /
//!   IO bandwidth — the three resource types of Table III),
//! * **inner-logic execution-time variability** `I` (Section II-A: low /
//!   mid / high variation classes from the spread of execution time across
//!   request types),
//! * **sensitivity to resource capping** `S` (Section II-B, Fig 3c: highly /
//!   moderately / less variable under shortage),
//! * **communication-overhead level** `C` (Section II-C, Fig 4),
//! * the **request DAGs** of the two benchmarks, TrainTicket (industry) and
//!   SocialNetwork (academia), and the five evaluated request types of
//!   Table V.
//!
//! The catalogs here are synthetic stand-ins for the real benchmark
//! deployments, calibrated so the *distributions the scheduler observes*
//! match the paper's characterization (see DESIGN.md §2).

pub mod benchmarks;
pub mod dag;
pub mod microservice;
pub mod requests;
pub mod resources;

pub use dag::ServiceDag;
pub use microservice::{
    CommClass, InnerVariability, Microservice, ResourceIntensity, ResourceSensitivity, ServiceId,
};
pub use requests::{RequestCatalog, RequestType, RequestTypeId, VolatilityClass};
pub use resources::{ResourceKind, ResourceVector};
