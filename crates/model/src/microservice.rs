//! Microservice definitions: demand, variability, sensitivity, comm class.

use crate::resources::{ResourceIntensityProfile, ResourceVector};
use mlp_stats::Dist;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a microservice *template* in a [`crate::benchmarks`]
/// catalog. Microservices are reused across request DAGs (the paper's
/// "interoperability across the application boundary"), so DAG nodes refer
/// to templates by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

/// Inner-logic execution-time variability `I` (Section II-A).
///
/// The paper classifies services by the largest relative variation of
/// execution time observed across request invocations: `< 15 %` low,
/// `15–45 %` mid, `> 45 %` high.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InnerVariability {
    /// Largest execution-time variation below 15 %.
    Low,
    /// Variation between 15 % and 45 %.
    Mid,
    /// Variation above 45 % (e.g. `order` in Fig 2, which doubles).
    High,
}

impl InnerVariability {
    /// The paper's 1–3 intensity scale (Table II).
    pub fn level(self) -> u8 {
        match self {
            InnerVariability::Low => 1,
            InnerVariability::Mid => 2,
            InnerVariability::High => 3,
        }
    }

    /// Coefficient of variation used when synthesizing execution times so
    /// that ~100 invocations land in the paper's spread band for the class.
    ///
    /// Chosen to center each class's *expected* 100-sample spread inside
    /// its band (expected extremes ≈ ±2.7σ, so spread ≈ e^(5.4·cv) − 1):
    /// ≈0.11 for Low (<0.15), ≈0.35 for Mid (0.15–0.45), ≈1.6 for High
    /// (>0.45). Values at the old calibration (0.025 / 0.07) sat on the
    /// band edges and misclassified under unlucky sample streams.
    pub fn cv(self) -> f64 {
        match self {
            InnerVariability::Low => 0.02,
            InnerVariability::Mid => 0.055,
            InnerVariability::High => 0.18,
        }
    }

    /// Classifies an observed relative spread `(max−min)/min` back into a
    /// class using the paper's Section II-A thresholds.
    pub fn classify(spread: f64) -> InnerVariability {
        if spread < 0.15 {
            InnerVariability::Low
        } else if spread <= 0.45 {
            InnerVariability::Mid
        } else {
            InnerVariability::High
        }
    }
}

/// Sensitivity to resource shortage `S` (Section II-B, Fig 3c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceSensitivity {
    /// Less variable: neither mean nor variance respond to capping
    /// ("uncommon in microservice scenarios").
    Less,
    /// Moderately variable: capping raises the mean, variance unchanged.
    Moderate,
    /// Highly variable: capping raises both mean and variance.
    High,
}

impl ResourceSensitivity {
    /// The paper's 1–3 intensity scale (Table II).
    pub fn level(self) -> u8 {
        match self {
            ResourceSensitivity::Less => 1,
            ResourceSensitivity::Moderate => 2,
            ResourceSensitivity::High => 3,
        }
    }

    /// Execution-time multiplier (≥ 1) when the service only receives
    /// fraction `f ∈ (0,1]` of its demanded resources.
    ///
    /// * `Less`: unaffected.
    /// * `Moderate`: work-conserving slowdown `1/f` — mean shifts, no extra
    ///   variance (deterministic given `f`).
    /// * `High`: super-linear mean inflation `（1/f)·(1 + 0.6·(1−f))` *and*
    ///   multiplicative noise whose cv grows with the shortage — both the
    ///   mean and the variance of Fig 3c move.
    pub fn capping_penalty<R: Rng + ?Sized>(self, f: f64, rng: &mut R) -> f64 {
        let f = f.clamp(0.05, 1.0);
        if f >= 1.0 {
            return 1.0;
        }
        match self {
            ResourceSensitivity::Less => 1.0,
            ResourceSensitivity::Moderate => 1.0 / f,
            ResourceSensitivity::High => {
                let mean = (1.0 / f) * (1.0 + 0.6 * (1.0 - f));
                let noise_cv = 0.5 * (1.0 - f);
                let noise = Dist::lognormal_mean_cv(1.0, noise_cv).sample(rng);
                mean * noise
            }
        }
    }
}

/// Communication-overhead level `C` (Section II-C, Fig 4; Table II maps
/// Var(RTT) from 100 to 400 onto levels 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommClass {
    /// Tight RTT distribution (Var(RTT) ≲ 100): same-machine-like behaviour.
    Light,
    /// Intermediate (100 < Var(RTT) ≤ 400).
    Medium,
    /// Wide / congestion-prone RTTs (Var(RTT) > 400): long cross-machine
    /// links with occasional rerouting spikes.
    Heavy,
}

impl CommClass {
    /// The paper's 1–3 intensity scale (Table II).
    pub fn level(self) -> u8 {
        match self {
            CommClass::Light => 1,
            CommClass::Medium => 2,
            CommClass::Heavy => 3,
        }
    }

    /// Classifies from an observed RTT variance using Table II's bounds
    /// (variance in (100 µs)² units, i.e. 100→level 1 boundary, 400→level 3).
    pub fn classify_from_rtt_var(var: f64) -> CommClass {
        if var <= 100.0 {
            CommClass::Light
        } else if var <= 400.0 {
            CommClass::Medium
        } else {
            CommClass::Heavy
        }
    }
}

/// Dominant resource of a microservice (Section II-B Observation 1:
/// microservices are CPU-intensive, IO-intensive, or CPU&IO-intensive —
/// memory capacity is not a bottleneck).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceIntensity {
    /// CPU-bound.
    Cpu,
    /// IO-bandwidth-bound.
    Io,
    /// Bound by both CPU and IO.
    CpuIo,
}

/// A microservice template: what the scheduler can know about a service
/// class ahead of time (invocation pattern and demanded resource types
/// "can be foreseen", Section I).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Microservice {
    /// Template id, unique within its benchmark catalog.
    pub id: ServiceId,
    /// Human-readable name (e.g. `order`, `compose-post`).
    pub name: String,
    /// Resource demand while executing.
    pub demand: ResourceVector,
    /// Resource demand while suspended (idle container); the exec/suspend
    /// ratio is Fig 3a's characterization.
    pub suspend_demand: ResourceVector,
    /// Nominal mean execution time in milliseconds (abundant resources,
    /// baseline request logic).
    pub base_ms: f64,
    /// Inner-logic variability class `I`.
    pub inner: InnerVariability,
    /// Resource-shortage sensitivity class `S`.
    pub sensitivity: ResourceSensitivity,
    /// Communication-overhead class `C`.
    pub comm: CommClass,
    /// Dominant resource kind.
    pub intensity: ResourceIntensity,
}

impl Microservice {
    /// Convenience constructor; `suspend_demand` defaults to 10 % of the
    /// execution demand except memory (60 %: resident sets stay warm, which
    /// is why memory's exec/suspend ratio is lowest in Fig 3a).
    #[allow(clippy::too_many_arguments)] // mirrors the catalog table's columns
    pub fn new(
        id: u32,
        name: &str,
        demand: ResourceVector,
        base_ms: f64,
        inner: InnerVariability,
        sensitivity: ResourceSensitivity,
        comm: CommClass,
        intensity: ResourceIntensity,
    ) -> Self {
        Microservice {
            id: ServiceId(id),
            name: name.to_string(),
            demand,
            suspend_demand: ResourceVector::new(
                demand.cpu * 0.1,
                demand.mem * 0.6,
                demand.io * 0.1,
            ),
            base_ms,
            inner,
            sensitivity,
            comm,
            intensity,
        }
    }

    /// Execution-time distribution (ms) under a request-specific work
    /// factor (different request types trigger different amounts of the
    /// service's logic — the cause of Fig 2's spread).
    pub fn exec_dist(&self, work_factor: f64) -> Dist {
        Dist::lognormal_mean_cv(self.base_ms * work_factor.max(1e-3), self.inner.cv())
    }

    /// Samples one uncapped execution time in milliseconds.
    pub fn sample_exec_ms<R: Rng + ?Sized>(&self, work_factor: f64, rng: &mut R) -> f64 {
        self.exec_dist(work_factor).sample(rng)
    }

    /// Samples a full execution time (ms) given the satisfaction fraction
    /// `f` of its resource demand (1.0 = abundant resources).
    pub fn sample_exec_ms_capped<R: Rng + ?Sized>(
        &self,
        work_factor: f64,
        f: f64,
        rng: &mut R,
    ) -> f64 {
        self.sample_exec_ms_capped_parts(work_factor, f, rng).0
    }

    /// Like [`sample_exec_ms_capped`](Self::sample_exec_ms_capped), but
    /// also returns the sampled capping penalty (`total = uncapped ×
    /// penalty`). The penalty cannot be recomputed afterwards — a
    /// high-sensitivity service draws noise into it — so latency
    /// attribution captures it here, at sample time. Identical RNG call
    /// order to the single-value form.
    pub fn sample_exec_ms_capped_parts<R: Rng + ?Sized>(
        &self,
        work_factor: f64,
        f: f64,
        rng: &mut R,
    ) -> (f64, f64) {
        let uncapped = self.sample_exec_ms(work_factor, rng);
        let penalty = self.sensitivity.capping_penalty(f, rng);
        (uncapped * penalty, penalty)
    }

    /// Exec/suspend demand ratio per resource kind, Fig 3a's metric.
    pub fn demand_ratio(&self) -> ResourceIntensityProfile {
        ResourceIntensityProfile {
            cpu: safe_ratio(self.demand.cpu, self.suspend_demand.cpu),
            mem: safe_ratio(self.demand.mem, self.suspend_demand.mem),
            io: safe_ratio(self.demand.io, self.suspend_demand.io),
        }
    }
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        if a <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_stats::Summary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn svc(inner: InnerVariability, sens: ResourceSensitivity) -> Microservice {
        Microservice::new(
            0,
            "test",
            ResourceVector::new(1.0, 256.0, 10.0),
            20.0,
            inner,
            sens,
            CommClass::Light,
            ResourceIntensity::Cpu,
        )
    }

    #[test]
    fn levels_match_table2() {
        assert_eq!(InnerVariability::Low.level(), 1);
        assert_eq!(InnerVariability::High.level(), 3);
        assert_eq!(ResourceSensitivity::Moderate.level(), 2);
        assert_eq!(CommClass::Heavy.level(), 3);
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(InnerVariability::classify(0.10), InnerVariability::Low);
        assert_eq!(InnerVariability::classify(0.30), InnerVariability::Mid);
        assert_eq!(InnerVariability::classify(0.50), InnerVariability::High);
        assert_eq!(CommClass::classify_from_rtt_var(50.0), CommClass::Light);
        assert_eq!(CommClass::classify_from_rtt_var(250.0), CommClass::Medium);
        assert_eq!(CommClass::classify_from_rtt_var(900.0), CommClass::Heavy);
    }

    /// 100 invocations of each variability class should land in the paper's
    /// spread bands (Section II-A): <15 %, 15–45 %, >45 %.
    #[test]
    fn synthetic_spreads_match_paper_bands() {
        let mut rng = SmallRng::seed_from_u64(2022);
        for (class, lo, hi) in [
            (InnerVariability::Low, 0.0, 0.15),
            (InnerVariability::Mid, 0.15, 0.45),
            (InnerVariability::High, 0.45, 5.0),
        ] {
            let s = svc(class, ResourceSensitivity::Less);
            let mut sum = Summary::new();
            for _ in 0..100 {
                // Request-type work factors add the cross-request component
                // of the spread for mid/high classes.
                let wf = match class {
                    InnerVariability::Low => 1.0,
                    InnerVariability::Mid => 1.0,
                    InnerVariability::High => 1.0,
                };
                sum.record(s.sample_exec_ms(wf, &mut rng));
            }
            let spread = sum.relative_spread();
            assert!(spread >= lo && spread <= hi, "{class:?}: spread {spread} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn capping_penalty_monotone_in_shortage() {
        let mut rng = SmallRng::seed_from_u64(7);
        // Less: immune.
        assert_eq!(ResourceSensitivity::Less.capping_penalty(0.5, &mut rng), 1.0);
        // Moderate: exactly work-conserving.
        assert_eq!(ResourceSensitivity::Moderate.capping_penalty(0.5, &mut rng), 2.0);
        assert_eq!(ResourceSensitivity::Moderate.capping_penalty(1.0, &mut rng), 1.0);
        // High: worse than work-conserving on average.
        let mut s = Summary::new();
        for _ in 0..2000 {
            s.record(ResourceSensitivity::High.capping_penalty(0.5, &mut rng));
        }
        assert!(s.mean() > 2.0, "high-sensitivity mean {} should exceed 1/f", s.mean());
        assert!(s.variance() > 0.0, "high sensitivity must add variance");
    }

    #[test]
    fn high_sensitivity_variance_grows_with_shortage() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut var_at = |f: f64| {
            let mut s = Summary::new();
            for _ in 0..3000 {
                s.record(ResourceSensitivity::High.capping_penalty(f, &mut rng));
            }
            s.cv()
        };
        let cv_mild = var_at(0.9);
        let cv_severe = var_at(0.4);
        assert!(cv_severe > cv_mild, "cv {cv_severe} should exceed {cv_mild}");
    }

    #[test]
    fn capped_sample_is_slower() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = svc(InnerVariability::Low, ResourceSensitivity::Moderate);
        let mut free = Summary::new();
        let mut capped = Summary::new();
        for _ in 0..500 {
            free.record(s.sample_exec_ms_capped(1.0, 1.0, &mut rng));
            capped.record(s.sample_exec_ms_capped(1.0, 0.5, &mut rng));
        }
        assert!(capped.mean() > free.mean() * 1.8);
    }

    #[test]
    fn work_factor_scales_mean() {
        let s = svc(InnerVariability::Low, ResourceSensitivity::Less);
        assert!((s.exec_dist(2.0).mean() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn demand_ratio_structure() {
        let s = svc(InnerVariability::Low, ResourceSensitivity::Less);
        let r = s.demand_ratio();
        assert!((r.cpu - 10.0).abs() < 1e-9);
        assert!((r.mem - 1.0 / 0.6).abs() < 1e-9);
        // Memory ratio is the smallest — Fig 3a's "memory not a bottleneck".
        assert!(r.mem < r.cpu && r.mem < r.io);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn penalty_at_least_one(f in 0.05f64..=1.0, seed: u64) {
            let mut rng = SmallRng::seed_from_u64(seed);
            for sens in [ResourceSensitivity::Less, ResourceSensitivity::Moderate,
                         ResourceSensitivity::High] {
                prop_assert!(sens.capping_penalty(f, &mut rng) >= 0.999);
            }
        }

        #[test]
        fn exec_sample_positive(base in 0.1f64..1000.0, wf in 0.1f64..4.0, seed: u64) {
            let mut s = Microservice::new(1, "p", ResourceVector::new(1.0, 1.0, 1.0), base,
                InnerVariability::High, ResourceSensitivity::High, CommClass::Heavy,
                ResourceIntensity::CpuIo);
            s.base_ms = base;
            let mut rng = SmallRng::seed_from_u64(seed);
            prop_assert!(s.sample_exec_ms(wf, &mut rng) > 0.0);
        }
    }
}
