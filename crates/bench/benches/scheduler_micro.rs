//! Microbenchmarks of the scheduling hot paths: ledger arithmetic,
//! placement, volatility scoring, queue reordering, and the execution
//! model's samplers. These are the kernels every simulated second runs
//! thousands of times; regressions here directly inflate figure runtimes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlp_cluster::{Cluster, ResourceLedger};
use mlp_core::reorder::sort_by_reorder_ratio;
use mlp_core::volatility::Volatility;
use mlp_model::{RequestCatalog, ResourceVector};
use mlp_net::NetworkModel;
use mlp_sched::{RequestInfo, SchedulerCtx};
use mlp_sim::{SimDuration, SimRng, SimTime};
use mlp_stats::Dist;
use mlp_trace::{AuditLog, MetricsRegistry, ProfileStore, RequestId};
use rand::Rng;

fn bench_ledger(c: &mut Criterion) {
    let mut g = c.benchmark_group("ledger");
    let cap = ResourceVector::new(2.4, 2500.0, 350.0);
    let amt = ResourceVector::new(0.8, 300.0, 40.0);

    g.bench_function("reserve_unreserve", |b| {
        let mut ledger = ResourceLedger::new(cap);
        let mut t = 0u64;
        b.iter(|| {
            let from = SimTime::from_micros(t % 1_000_000);
            let to = from + SimDuration::from_millis(20);
            ledger.reserve(from, to, amt);
            ledger.unreserve(from, to, amt);
            t += 997;
        });
    });

    // A realistically loaded ledger: ~200 overlapping reservations.
    let mut loaded = ResourceLedger::new(cap);
    let mut rng = SimRng::new(7);
    for _ in 0..200 {
        let from = SimTime::from_micros(rng.rng().gen_range(0..1_000_000));
        let dur = SimDuration::from_micros(rng.rng().gen_range(5_000..50_000));
        loaded.reserve(from, from + dur, amt * 0.3);
    }
    g.bench_function("earliest_fit_loaded", |b| {
        b.iter(|| {
            loaded.earliest_fit(
                black_box(SimTime::from_micros(1000)),
                SimTime::from_secs(10),
                SimDuration::from_millis(25),
                black_box(amt),
            )
        });
    });
    g.bench_function("peak_usage_loaded", |b| {
        b.iter(|| loaded.peak_usage(black_box(SimTime::ZERO), SimTime::from_secs(1)));
    });

    // Query scaling with timeline length: ledgers pre-filled with 10 / 100
    // / 1000 overlapping reservations. The indexed profile should hold
    // query cost near-flat as n grows (binary search + bucket summaries)
    // where the naive rescan grew linearly.
    for n in [10usize, 100, 1000] {
        let mut ledger = ResourceLedger::new(cap);
        let mut rng = SimRng::new(11);
        let span_us = 1_000_000u64.max(n as u64 * 5_000);
        for _ in 0..n {
            let from = SimTime::from_micros(rng.rng().gen_range(0..span_us));
            let dur = SimDuration::from_micros(rng.rng().gen_range(5_000..50_000));
            ledger.reserve(from, from + dur, amt * 0.1);
        }
        let horizon = SimTime::from_micros(span_us + 100_000);
        g.bench_function(format!("usage_at_{n}"), |b| {
            b.iter(|| ledger.usage_at(black_box(SimTime::from_micros(span_us / 2))));
        });
        g.bench_function(format!("peak_usage_{n}"), |b| {
            b.iter(|| ledger.peak_usage(black_box(SimTime::ZERO), horizon));
        });
        g.bench_function(format!("earliest_fit_{n}"), |b| {
            b.iter(|| {
                ledger.earliest_fit(
                    black_box(SimTime::from_micros(1000)),
                    horizon,
                    SimDuration::from_millis(25),
                    black_box(amt),
                )
            });
        });
    }
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("model");
    let catalog = RequestCatalog::paper();
    let compose = catalog.request_by_name("compose-post").unwrap();

    g.bench_function("volatility_of_request", |b| {
        b.iter(|| Volatility::of_request(black_box(compose), &catalog));
    });
    g.bench_function("dag_topo_order", |b| {
        b.iter(|| black_box(&compose.dag).topo_order());
    });
    g.bench_function("dag_chains", |b| {
        b.iter(|| black_box(&compose.dag).chains());
    });

    let mut rng = SimRng::new(1);
    let svc = catalog.services.get(compose.dag.node(1).service);
    g.bench_function("sample_exec_capped", |b| {
        b.iter(|| svc.sample_exec_ms_capped(black_box(1.2), 0.7, rng.rng()));
    });
    let d = Dist::lognormal_mean_cv(20.0, 0.18);
    g.bench_function("lognormal_sample", |b| {
        b.iter(|| d.sample(rng.rng()));
    });
    g.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduling");
    let catalog = RequestCatalog::paper();
    let net = NetworkModel::paper_default();
    let profiles = ProfileStore::new();
    let metrics = MetricsRegistry::new();
    let audit = AuditLog::disabled();

    // Reorder-ratio sort of a 256-request waiting queue.
    let queue: Vec<RequestInfo> = (0..256)
        .map(|i| RequestInfo {
            id: RequestId(i),
            rtype: catalog.requests[(i % 5) as usize].id,
            arrival: SimTime::from_millis(i * 3),
        })
        .collect();
    let mut cluster = Cluster::paper_default();
    g.bench_function("reorder_sort_256", |b| {
        let mut q = queue.clone();
        b.iter(|| {
            let ctx = SchedulerCtx {
                now: SimTime::from_secs(2),
                cluster: &mut cluster,
                profiles: &profiles,
                catalog: &catalog,
                net: &net,
                metrics: &metrics,
                audit: &audit,
            };
            sort_by_reorder_ratio(&mut q, SimTime::from_secs(2), &ctx);
        });
    });

    // Full-request placement on a 100-machine cluster (v-MLP policy).
    g.bench_function("plan_compose_post_100m", |b| {
        let mut cluster = Cluster::paper_default();
        let mut cursor = 0usize;
        let mut fit = mlp_sched::placement::FitCursor::new();
        let req = RequestInfo {
            id: RequestId(0),
            rtype: catalog.request_by_name("compose-post").unwrap().id,
            arrival: SimTime::ZERO,
        };
        let policy = mlp_core::organizer::OrganizerPolicy::new(Volatility::new(0.8));
        b.iter(|| {
            let mut ctx = SchedulerCtx {
                now: SimTime::ZERO,
                cluster: &mut cluster,
                profiles: &profiles,
                catalog: &catalog,
                net: &net,
                metrics: &metrics,
                audit: &audit,
            };
            let plan =
                mlp_sched::placement::plan_request(&req, &policy, &mut cursor, &mut fit, &mut ctx)
                    .expect("placeable");
            mlp_sched::placement::unreserve_plan(&plan, &mut ctx);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ledger, bench_model, bench_scheduling);
criterion_main!(benches);
