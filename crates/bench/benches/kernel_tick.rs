//! One admission-round "kernel tick" at growing shard counts: the unit of
//! work `run_round` issues every sampling period, isolated from the event
//! loop. Each iteration rebuilds a fresh v-MLP scheduler, queues 64
//! arrivals, and runs one `schedule_parallel` round against a fleet of 16
//! machines per shard (the `fig_scale` sharding regime). The cluster
//! clone per iteration is part of the measured cost but is a flat memcpy,
//! identical across the worker axis, so worker-to-worker deltas isolate
//! the pool itself. `w1` is the inline path — literally the sequential
//! code; `w2` adds the scatter/merge machinery.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mlp_cluster::{Cluster, ShardPolicy, ShardPool};
use mlp_core::{VMlpConfig, VMlpScheduler};
use mlp_engine::profiling::warm_profiles;
use mlp_model::{RequestCatalog, ResourceVector};
use mlp_net::NetworkModel;
use mlp_sched::{RequestInfo, Scheduler, SchedulerCtx};
use mlp_sim::{SimRng, SimTime};
use mlp_trace::{AuditLog, MetricsRegistry, RequestId};

/// Queued arrivals per tick — deep enough that every shard sees work at
/// 64 shards, small enough that one round drains it.
const QUEUE: usize = 64;

fn bench_kernel_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_tick");
    g.sample_size(10);
    let catalog = RequestCatalog::paper();
    let profiles = warm_profiles(&catalog, 100, &mut SimRng::new(3));
    let net = NetworkModel::paper_default();
    let metrics = MetricsRegistry::new();
    let audit = AuditLog::disabled();

    let mix = catalog.balanced_mix();
    let reqs: Vec<RequestInfo> = (0..QUEUE)
        .map(|i| RequestInfo {
            id: RequestId(i as u64),
            rtype: mix[i % mix.len()].0,
            arrival: SimTime::ZERO,
        })
        .collect();

    for &shards in &[1usize, 16, 64] {
        let base = Cluster::homogeneous(shards * 16, ResourceVector::new(2.4, 2_500.0, 350.0))
            .with_shards(shards, ShardPolicy::RoundRobin);
        for &workers in &[1usize, 2] {
            let pool = ShardPool::new(workers);
            let id = BenchmarkId::from_parameter(format!("s{shards}_w{workers}"));
            g.bench_with_input(id, &shards, |b, _| {
                b.iter(|| {
                    let mut cluster = base.clone();
                    let mut sched = VMlpScheduler::new();
                    let mut ctx = SchedulerCtx {
                        now: SimTime::from_secs(1),
                        cluster: &mut cluster,
                        profiles: &profiles,
                        catalog: &catalog,
                        net: &net,
                        metrics: &metrics,
                        audit: &audit,
                    };
                    for r in &reqs {
                        sched.on_arrival(*r, &mut ctx);
                    }
                    black_box(sched.schedule_parallel(&mut ctx, &pool))
                });
            });
        }
    }
    g.finish();
}

/// The tentpole's queue-depth axis: one sequential admission round over a
/// waiting queue of 16 / 256 / 4096 requests, sorted reference vs
/// incremental index. The sort pays `O(n log n)` per round regardless of
/// how many requests actually admit; the index pays per pop. A single
/// 16-machine shard keeps placement cost fixed so the spread between the
/// two variants isolates queue maintenance.
fn bench_queue_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_depth_tick");
    g.sample_size(10);
    let catalog = RequestCatalog::paper();
    let profiles = warm_profiles(&catalog, 100, &mut SimRng::new(3));
    let net = NetworkModel::paper_default();
    let metrics = MetricsRegistry::new();
    let audit = AuditLog::disabled();
    let mix = catalog.balanced_mix();
    let base = Cluster::homogeneous(16, ResourceVector::new(2.4, 2_500.0, 350.0));

    for &depth in &[16usize, 256, 4096] {
        let reqs: Vec<RequestInfo> = (0..depth)
            .map(|i| RequestInfo {
                id: RequestId(i as u64),
                rtype: mix[i % mix.len()].0,
                // Spread arrivals so the reorder ranks are non-trivial.
                arrival: SimTime::from_millis((i as u64 * 7) % 900),
            })
            .collect();
        for (variant, cfg) in [
            ("indexed", VMlpConfig::paper()),
            ("sorted", VMlpConfig { unindexed_reorder: true, ..VMlpConfig::paper() }),
        ] {
            let id = BenchmarkId::from_parameter(format!("q{depth}_{variant}"));
            g.bench_with_input(id, &depth, |b, _| {
                b.iter(|| {
                    let mut cluster = base.clone();
                    let mut sched = VMlpScheduler::with_config(cfg);
                    let mut ctx = SchedulerCtx {
                        now: SimTime::from_secs(1),
                        cluster: &mut cluster,
                        profiles: &profiles,
                        catalog: &catalog,
                        net: &net,
                        metrics: &metrics,
                        audit: &audit,
                    };
                    for r in &reqs {
                        sched.on_arrival(*r, &mut ctx);
                    }
                    black_box(sched.schedule(&mut ctx))
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_kernel_tick, bench_queue_depth);
criterion_main!(benches);
