//! Whole-simulation benchmarks: one tiny-scale end-to-end run per
//! scheduling scheme (the unit of work behind every figure cell), plus the
//! profiling warm-up and arrival generation stages of the Fig 8 workflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlp_bench::Scale;
use mlp_engine::experiment::Experiment;
use mlp_engine::profiling::warm_profiles;
use mlp_engine::scheme::Scheme;
use mlp_model::RequestCatalog;
use mlp_sim::SimRng;
use mlp_workload::{generate_stream, WorkloadPattern};

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_tiny");
    g.sample_size(10);
    for scheme in Scheme::PAPER {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &scheme, |b, &s| {
            let cfg = Scale::tiny().config(s);
            b.iter(|| Experiment::from_config(cfg.clone()).run().unwrap());
        });
    }
    g.finish();
}

fn bench_workflow_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_stages");
    let catalog = RequestCatalog::paper();
    g.bench_function("warm_profiles_100", |b| {
        b.iter(|| warm_profiles(&catalog, 100, &mut SimRng::new(3)));
    });
    let mix = catalog.balanced_mix();
    g.bench_function("generate_stream_l2_40s", |b| {
        b.iter(|| {
            generate_stream(WorkloadPattern::L2Fluctuating, 140.0, 40.0, &mix, &mut SimRng::new(4))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_end_to_end, bench_workflow_stages);
criterion_main!(benches);
