//! Ablation benchmarks for the design choices DESIGN.md §6 calls out:
//! Δt policy, delay slot, resource stretch, queue reordering/switching,
//! and reservation trimming — each as a timed end-to-end run of the
//! corresponding v-MLP variant. (The *quality* impact of the same
//! variants is reported by the `ablations` binary.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlp_bench::Scale;
use mlp_core::organizer::DtPolicy;
use mlp_core::VMlpConfig;
use mlp_engine::experiment::Experiment;
use mlp_engine::scheme::Scheme;

/// The ablated configurations, labeled.
pub fn variants() -> Vec<(&'static str, VMlpConfig)> {
    let full = VMlpConfig::paper();
    vec![
        ("full", full),
        ("no_healing", VMlpConfig::without_healing()),
        ("no_delay_slot", VMlpConfig { delay_slot: false, ..full }),
        ("no_stretch", VMlpConfig { resource_stretch: false, ..full }),
        ("no_reorder", VMlpConfig { reorder: false, ..full }),
        ("no_queue_switch", VMlpConfig { queue_switch: false, ..full }),
        ("no_trim", VMlpConfig { trim_reservations: false, ..full }),
        ("dt_always_mean", VMlpConfig { dt_policy: DtPolicy::AlwaysMean, ..full }),
        ("dt_always_p99", VMlpConfig { dt_policy: DtPolicy::AlwaysP99, ..full }),
    ]
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("vmlp_ablations");
    g.sample_size(10);
    for (name, cfg) in variants() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, &cfg| {
            let ec = Scale::tiny().config(Scheme::VMlpCustom(cfg));
            b.iter(|| Experiment::from_config(ec.clone()).run().unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
