//! Fig 5 — the design challenge: mispredicted end times and late messages
//! derail naive schedules into contention.

use mlp_engine::report;
use mlp_engine::scenario::run_challenge;
use mlp_engine::scheme::Scheme;

/// Renders the challenge outcomes for every scheme.
pub fn report(seed: u64) -> String {
    let rows: Vec<Vec<String>> = Scheme::PAPER
        .into_iter()
        .map(|s| {
            let o = run_challenge(s, seed);
            vec![
                o.scheme,
                format!("{:.1}%", o.late_fraction * 100.0),
                format!("{:.1}%", o.capped_fraction * 100.0),
                report::f(o.p99_ms),
                o.healing_actions.to_string(),
            ]
        })
        .collect();
    report::table(
        "Fig 5 — schedule misalignment under misprediction (tight high-V_r scenario)",
        &["scheme", "late invocations", "contended spans", "p99 (ms)", "healing actions"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_five_schemes() {
        let r = report(3);
        assert!(r.contains("v-MLP"));
        assert!(r.contains("FairSched"));
        assert_eq!(r.lines().count(), 3 + 5);
    }
}
