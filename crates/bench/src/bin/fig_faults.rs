//! Regenerates the fault-storm robustness scenario (extension figure)
//! over a sweep config (`--sweep=FILE`, default: CurSched / FullProfile /
//! v-MLP).
fn main() {
    let scale = mlp_bench::scale_from_args();
    let sweep = mlp_bench::sweep_from_args().unwrap_or_else(mlp_bench::fig_faults::default_sweep);
    eprintln!(
        "running fault-storm scenario at --scale={} over [{}] …",
        scale.label,
        sweep.labels().join(", ")
    );
    print!("{}", mlp_bench::fig_faults::report_sweep(scale, 2022, &sweep));
    if let Some(path) = mlp_bench::audit_from_args() {
        // Audited companion run: v-MLP riding out the same storm, so the
        // trail captures crash-replans, sheds, and retries.
        let cfg = scale
            .config(mlp_engine::scheme::Scheme::VMlp)
            .with_faults(mlp_bench::fig_faults::storm_for(&scale));
        mlp_bench::audit_run(cfg, &path);
    }
}
