//! Regenerates the fault-storm robustness scenario (extension figure).
fn main() {
    let scale = mlp_bench::scale_from_args();
    eprintln!("running fault-storm scenario at --scale={} …", scale.label);
    print!("{}", mlp_bench::fig_faults::report(scale, 2022));
}
