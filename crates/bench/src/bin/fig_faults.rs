//! Regenerates the fault-storm robustness scenario (extension figure).
fn main() {
    let scale = mlp_bench::scale_from_args();
    eprintln!("running fault-storm scenario at --scale={} …", scale.label);
    print!("{}", mlp_bench::fig_faults::report(scale, 2022));
    if let Some(path) = mlp_bench::audit_from_args() {
        // Audited companion run: v-MLP riding out the same storm, so the
        // trail captures crash-replans, sheds, and retries.
        let cfg = scale
            .config(mlp_engine::scheme::Scheme::VMlp)
            .with_faults(mlp_bench::fig_faults::storm_for(&scale));
        mlp_bench::audit_run(cfg, &path);
    }
}
