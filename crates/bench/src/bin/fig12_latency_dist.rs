//! Regenerates Fig 12 (latency distribution vs workload level).
fn main() {
    let scale = mlp_bench::scale_from_args();
    eprintln!("running Fig 12 sweep at --scale={} …", scale.label);
    print!("{}", mlp_bench::fig12_latency::report(scale, 2022));
}
