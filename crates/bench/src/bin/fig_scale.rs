//! Scale-trajectory sweep: v-MLP wall-clock as the fleet grows 8 → 4096
//! machines (crossed with a worker-thread axis) with one shard per 16
//! machines and the invariant auditor on.
//! Prints the trajectory table and merges the data points into the
//! repo-root `BENCH_sim.json` under the `fig_scale` key (preserving the
//! `perf_baseline` snapshot). Exits non-zero if any point reports an
//! invariant violation, so CI can gate on it.

use mlp_bench::fig_scale;

fn main() {
    let scale = mlp_bench::scale_from_args();
    let points = fig_scale::data(&scale, 2022);
    println!("{}", fig_scale::report(&points, &scale));

    let value = serde_json::to_value(&points).expect("scale points serialize");
    mlp_bench::merge_bench_json(vec![("fig_scale".to_string(), value)]);

    let violations: u64 = points.iter().map(|p| p.invariant_violations).sum();
    if violations > 0 {
        eprintln!("fig_scale: {violations} invariant violations — failing");
        std::process::exit(1);
    }
}
