//! Regenerates Fig 5 (misprediction-driven contention scenario).
fn main() {
    print!("{}", mlp_bench::fig05_challenge::report(2022));
}
