//! Regenerates Fig 3a (exec/suspend resource-demand ratios).
fn main() {
    print!("{}", mlp_bench::fig03_resources::fig3a_report());
}
