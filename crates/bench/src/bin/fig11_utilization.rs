//! Regenerates Fig 11 (cluster utilization around the workload peak).
fn main() {
    let scale = mlp_bench::scale_from_args();
    eprintln!("running Fig 11 curves at --scale={} …", scale.label);
    print!("{}", mlp_bench::fig11_utilization::report(scale, 2022));
}
