//! Scheduler-zoo sweep: every scheme in the sweep config
//! (`--sweep=FILE`, default `fig_zoo::default_sweep` = the committed
//! `sweeps/zoo.json`) through the steady Fig 14 operating point and the
//! fault storm, auditor on for every run. Prints the zoo table, merges
//! the points into the repo-root `BENCH_sim.json` under the `fig_zoo`
//! key, and exits non-zero if any (scheme, scenario) cell reports an
//! invariant violation or a scheme completes nothing — CI's zoo-smoke
//! gate.

use mlp_bench::fig_zoo;

fn main() {
    mlp_engine::shutdown::install_signal_handler();
    let scale = mlp_bench::scale_from_args();
    let sweep = mlp_bench::sweep_from_args().unwrap_or_else(fig_zoo::default_sweep);
    eprintln!(
        "running scheduler zoo at --scale={} over [{}] …",
        scale.label,
        sweep.labels().join(", ")
    );
    let points = fig_zoo::data(&scale, 2022, &sweep);
    println!("{}", fig_zoo::report(&points, &scale));

    // Flush whatever completed — on ctrl-c this is the partial sweep
    // (the interrupted point was discarded), and the exit code says so.
    if !points.is_empty() {
        let value = serde_json::to_value(&points).expect("zoo points serialize");
        mlp_bench::merge_bench_json(vec![("fig_zoo".to_string(), value)]);
    }
    if mlp_engine::shutdown::requested() {
        eprintln!(
            "fig_zoo: interrupted — flushed {} of {} sweep points",
            points.len(),
            sweep.schemes.len()
        );
        std::process::exit(130);
    }

    let mut failed = false;
    for p in &points {
        if p.invariant_violations > 0 {
            eprintln!("fig_zoo: {}: {} invariant violations", p.scheme, p.invariant_violations);
            failed = true;
        }
        if p.goodput_rps <= 0.0 || p.storm_completed == 0 {
            eprintln!("fig_zoo: {}: completed nothing in at least one scenario", p.scheme);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
