//! Bounded-memory soak: the swept schemes (`--sweep=FILE`, default
//! CurSched / FullProfile / v-MLP) through a fixed count of open-loop
//! requests (2M per scheme at paper scale) on a 256-machine / 16-shard
//! fleet with the invariant auditor on and the collector in streaming
//! mode. Prints the soak table and merges the points into the repo-root
//! `BENCH_sim.json` under the `fig_soak` key. Exits non-zero if any
//! scheme reports an invariant violation, pulls fewer arrivals than the
//! target (the cap must bind, not the horizon), lets the request table
//! grow with total arrivals instead of in-flight load, or blows v-MLP's
//! per-request wall budget relative to FullProfile (budget gate skipped
//! with a note when a custom sweep omits either scheme) — so CI's
//! soak-smoke job can gate on all four.

use mlp_bench::fig_soak;

fn main() {
    mlp_engine::shutdown::install_signal_handler();
    let scale = mlp_bench::scale_from_args();
    let sweep = mlp_bench::sweep_from_args().unwrap_or_else(fig_soak::default_sweep);
    let points = fig_soak::data_sweep(&scale, 2022, &sweep);
    println!("{}", fig_soak::report(&points, &scale));

    // Flush whatever completed — on ctrl-c this is the partial sweep
    // (the interrupted point was discarded), and the exit code says so.
    if !points.is_empty() {
        let value = serde_json::to_value(&points).expect("soak points serialize");
        mlp_bench::merge_bench_json(vec![("fig_soak".to_string(), value)]);
    }
    if mlp_engine::shutdown::requested() {
        eprintln!(
            "fig_soak: interrupted — flushed {} of {} sweep points",
            points.len(),
            sweep.schemes.len()
        );
        std::process::exit(130);
    }

    let target = fig_soak::request_target(&scale) as usize;
    let mut failed = false;
    for p in &points {
        if p.invariant_violations > 0 {
            eprintln!("fig_soak: {}: {} invariant violations", p.scheme, p.invariant_violations);
            failed = true;
        }
        if p.arrived < target {
            eprintln!("fig_soak: {}: only {} of {target} requests arrived", p.scheme, p.arrived);
            failed = true;
        }
        if !fig_soak::memory_bounded(p) {
            eprintln!(
                "fig_soak: {}: request table peak {} not ≪ {} arrivals",
                p.scheme, p.request_table_peak, p.arrived
            );
            failed = true;
        }
    }
    let has_budget_pair = points.iter().any(|p| p.scheme == "v-MLP")
        && points.iter().any(|p| p.scheme == "FullProfile");
    match fig_soak::vmlp_within_budget(&points) {
        Some(true) => {}
        Some(false) => {
            eprintln!(
                "fig_soak: v-MLP µs/req exceeds {}× the FullProfile baseline",
                fig_soak::VMLP_BUDGET_MULTIPLE
            );
            failed = true;
        }
        None if !has_budget_pair => {
            eprintln!("fig_soak: sweep omits v-MLP or FullProfile; perf budget gate skipped");
        }
        None => {
            eprintln!("fig_soak: missing v-MLP or FullProfile point for the perf budget gate");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
