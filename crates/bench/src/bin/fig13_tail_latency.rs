//! Regenerates Fig 13 (normalized tail latency per volatility stream).
fn main() {
    let scale = mlp_bench::scale_from_args();
    eprintln!("running Fig 13 grid at --scale={} …", scale.label);
    print!("{}", mlp_bench::fig13_tail::report(scale, 2022));
}
