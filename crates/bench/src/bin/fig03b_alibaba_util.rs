//! Regenerates Fig 3b (Alibaba-style container-utilization trace).
fn main() {
    print!("{}", mlp_bench::fig03_resources::fig3b_report(2022));
}
