//! Regenerates Fig 14 (normalized throughput vs high-V_r ratio) over a
//! sweep config (`--sweep=FILE`, default: the paper's five schemes).
fn main() {
    let scale = mlp_bench::scale_from_args();
    let sweep =
        mlp_bench::sweep_from_args().unwrap_or_else(mlp_bench::fig14_throughput::default_sweep);
    eprintln!(
        "running Fig 14 sweep at --scale={} over [{}] …",
        scale.label,
        sweep.labels().join(", ")
    );
    print!("{}", mlp_bench::fig14_throughput::report_sweep(scale, 2022, &sweep));
    if let Some(path) = mlp_bench::audit_from_args() {
        // Audited companion run: the sweep's most contended cell (v-MLP at
        // the 50% high-V_r mid-point of the ratio axis).
        let cfg = scale
            .config(mlp_engine::scheme::Scheme::VMlp)
            .with_pattern(mlp_workload::WorkloadPattern::Constant)
            .with_mix(mlp_engine::config::MixSpec::HighRatio(0.5));
        mlp_bench::audit_run(cfg, &path);
    }
}
