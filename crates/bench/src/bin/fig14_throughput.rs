//! Regenerates Fig 14 (normalized throughput vs high-V_r ratio).
fn main() {
    let scale = mlp_bench::scale_from_args();
    eprintln!("running Fig 14 sweep at --scale={} …", scale.label);
    print!("{}", mlp_bench::fig14_throughput::report(scale, 2022));
    if let Some(path) = mlp_bench::audit_from_args() {
        // Audited companion run: the sweep's most contended cell (v-MLP at
        // the 50% high-V_r mid-point of the ratio axis).
        let cfg = scale
            .config(mlp_engine::scheme::Scheme::VMlp)
            .with_pattern(mlp_workload::WorkloadPattern::Constant)
            .with_mix(mlp_engine::config::MixSpec::HighRatio(0.5));
        mlp_bench::audit_run(cfg, &path);
    }
}
