//! Regenerates Fig 14 (normalized throughput vs high-V_r ratio).
fn main() {
    let scale = mlp_bench::scale_from_args();
    eprintln!("running Fig 14 sweep at --scale={} …", scale.label);
    print!("{}", mlp_bench::fig14_throughput::report(scale, 2022));
}
