//! Regenerates Fig 10 (normalized QoS-violation rates).
fn main() {
    let scale = mlp_bench::scale_from_args();
    eprintln!("running Fig 10 grid at --scale={} …", scale.label);
    print!("{}", mlp_bench::fig10_qos::report(scale, 2022));
}
