//! Regenerates Fig 3c (execution time under resource capping).
fn main() {
    print!("{}", mlp_bench::fig03_resources::fig3c_report(2022));
}
