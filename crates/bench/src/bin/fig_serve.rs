//! Live-serving soak: the wall-clock kernel behind a loopback TCP socket
//! under open-loop load, invariant auditor on throughout. Prints the
//! soak summary and merges the point into the repo-root `BENCH_sim.json`
//! under the `fig_serve` key. Exits non-zero if the auditor fires, the
//! drain drops in-flight requests, transport errors appear, or the
//! offered load was not actually served — so CI's serve-smoke job can
//! gate on all four.

use mlp_bench::fig_serve;

fn main() {
    let scale = mlp_bench::scale_from_args();
    let point = fig_serve::run(&scale, 2022);
    println!("{}", fig_serve::report(&point));

    let value = serde_json::to_value(&point).expect("serve point serializes");
    mlp_bench::merge_bench_json(vec![("fig_serve".to_string(), value)]);

    let failures = fig_serve::gates(&point);
    for f in &failures {
        eprintln!("fig_serve: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
