//! Quality-impact ablation study of v-MLP's design choices (DESIGN.md §6):
//! runs each ablated configuration on the L2 fluctuating workload and
//! reports tails, violations, utilization, and healing activity.

use mlp_bench::evalrun::{run_cells, Cell};
use mlp_core::organizer::DtPolicy;
use mlp_core::VMlpConfig;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_workload::WorkloadPattern;

fn main() {
    let scale = mlp_bench::scale_from_args();
    eprintln!("running v-MLP ablations at --scale={} …", scale.label);
    let full = VMlpConfig::paper();
    let variants: Vec<(&str, VMlpConfig)> = vec![
        ("full v-MLP", full),
        ("no healing", VMlpConfig::without_healing()),
        ("no delay slot", VMlpConfig { delay_slot: false, ..full }),
        ("no stretch", VMlpConfig { resource_stretch: false, ..full }),
        ("no reorder (FCFS)", VMlpConfig { reorder: false, ..full }),
        ("no queue switch", VMlpConfig { queue_switch: false, ..full }),
        ("no reservation trim", VMlpConfig { trim_reservations: false, ..full }),
        ("Δt = always mean", VMlpConfig { dt_policy: DtPolicy::AlwaysMean, ..full }),
        ("Δt = always p99", VMlpConfig { dt_policy: DtPolicy::AlwaysP99, ..full }),
    ];
    let cells: Vec<Cell> = variants
        .iter()
        .map(|(_, cfg)| Cell {
            scheme: Scheme::VMlpCustom(*cfg).into(),
            pattern: WorkloadPattern::L2Fluctuating,
            ..Cell::new(Scheme::VMlp)
        })
        .collect();
    let results = run_cells(scale, &cells, 2022);
    let rows: Vec<Vec<String>> = variants
        .iter()
        .zip(&results)
        .map(|((name, _), r)| {
            vec![
                name.to_string(),
                report::f(r.latency_ms[0]),
                report::f(r.latency_ms[2]),
                format!("{:.1}%", r.violation * 100.0),
                report::f(r.utilization),
                format!("{:.0}/{:.0}/{:.0}", r.healing.0, r.healing.1, r.healing.2),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            "v-MLP design-choice ablations (L2 fluctuating workload)",
            &["variant", "p50 ms", "p99 ms", "violations", "util", "slot/stretch/switch"],
            &rows,
        )
    );
}
