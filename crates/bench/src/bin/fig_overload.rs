//! Flash-crowd overload sweep: the swept schemes (`--sweep=FILE`,
//! default CurSched / FullProfile / v-MLP) facing 1–5× surge
//! multipliers, with the sweep's last scheme additionally run behind the
//! resilience stack, auditor on for every cell. Prints the
//! degradation-trajectory table and merges the points into the repo-root
//! `BENCH_sim.json` under the `fig_overload` key. Exits non-zero if any
//! cell reports an invariant violation, if request conservation breaks
//! (arrived ≠ completed + unfinished), if the resilient arm issues more
//! retries than the token budget can possibly grant, or if it retains
//! less than 80% of its own 1× goodput at 3× — the headline
//! graceful-degradation gate CI's overload-smoke job runs.

use mlp_bench::fig_overload::{self, GATE_MULTIPLIER, GATE_RETENTION};

fn main() {
    let scale = mlp_bench::scale_from_args();
    let seed = 2022;
    let sweep = mlp_bench::sweep_from_args().unwrap_or_else(fig_overload::default_sweep);
    let points = fig_overload::data_sweep(&scale, seed, &sweep);
    println!("{}", fig_overload::report(&points, &scale));

    let value = serde_json::to_value(&points).expect("overload points serialize");
    mlp_bench::merge_bench_json(vec![("fig_overload".to_string(), value)]);

    // The resilient arm is always the sweep's last scheme.
    let resilient_scheme = sweep.schemes.last().expect("validated sweep is non-empty").clone();
    let mut failed = false;
    for p in &points {
        if p.invariant_violations > 0 {
            eprintln!(
                "fig_overload: {} @{}×: {} invariant violations",
                p.arm, p.multiplier, p.invariant_violations
            );
            failed = true;
        }
        if p.arrived != p.completed + p.unfinished {
            eprintln!(
                "fig_overload: {} @{}×: conservation broke: {} arrived != {} completed + {} unfinished",
                p.arm, p.multiplier, p.arrived, p.completed, p.unfinished
            );
            failed = true;
        }
        if p.resilience {
            let cfg = fig_overload::config_for(
                &scale,
                resilient_scheme.clone(),
                p.multiplier,
                true,
                seed,
            );
            let bound = fig_overload::retry_grant_bound(&cfg);
            if p.retries > bound {
                eprintln!(
                    "fig_overload: {} @{}×: {} retries exceed the budget's grant bound {bound}",
                    p.arm, p.multiplier, p.retries
                );
                failed = true;
            }
        }
    }
    let resilient_label = resilient_scheme.display_name();
    match fig_overload::goodput_retention(&points) {
        Some(r) if r >= GATE_RETENTION => {
            eprintln!(
                "fig_overload: resilient {resilient_label} retains {:.0}% of 1× goodput at \
                 {GATE_MULTIPLIER}× (gate: ≥{:.0}%)",
                r * 100.0,
                GATE_RETENTION * 100.0
            );
        }
        Some(r) => {
            eprintln!(
                "fig_overload: GATE FAILED — resilient {resilient_label} retains only {:.0}% of \
                 1× goodput at {GATE_MULTIPLIER}× (need ≥{:.0}%)",
                r * 100.0,
                GATE_RETENTION * 100.0
            );
            failed = true;
        }
        None => {
            eprintln!(
                "fig_overload: GATE FAILED — missing resilient {resilient_label} points or zero \
                 capacity"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
