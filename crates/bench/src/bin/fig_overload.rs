//! Flash-crowd overload sweep: baselines and v-MLP with/without the
//! resilience stack across 1–5× surge multipliers, auditor on for every
//! cell. Prints the degradation-trajectory table and merges the points
//! into the repo-root `BENCH_sim.json` under the `fig_overload` key.
//! Exits non-zero if any cell reports an invariant violation, if request
//! conservation breaks (arrived ≠ completed + unfinished), if a resilient
//! arm issues more retries than the token budget can possibly grant, or
//! if resilient v-MLP at 3× retains less than 80% of its own 1× goodput —
//! the headline graceful-degradation gate CI's overload-smoke job runs.

use mlp_bench::fig_overload::{self, GATE_MULTIPLIER, GATE_RETENTION};
use mlp_engine::scheme::Scheme;

fn main() {
    let scale = mlp_bench::scale_from_args();
    let seed = 2022;
    let points = fig_overload::data(&scale, seed);
    println!("{}", fig_overload::report(&points, &scale));

    let value = serde_json::to_value(&points).expect("overload points serialize");
    mlp_bench::merge_bench_json(vec![("fig_overload".to_string(), value)]);

    let mut failed = false;
    for p in &points {
        if p.invariant_violations > 0 {
            eprintln!(
                "fig_overload: {} @{}×: {} invariant violations",
                p.arm, p.multiplier, p.invariant_violations
            );
            failed = true;
        }
        if p.arrived != p.completed + p.unfinished {
            eprintln!(
                "fig_overload: {} @{}×: conservation broke: {} arrived != {} completed + {} unfinished",
                p.arm, p.multiplier, p.arrived, p.completed, p.unfinished
            );
            failed = true;
        }
        if p.resilience {
            let scheme =
                if p.scheme == Scheme::VMlp.label() { Scheme::VMlp } else { Scheme::CurSched };
            let cfg = fig_overload::config_for(&scale, scheme, p.multiplier, true, seed);
            let bound = fig_overload::retry_grant_bound(&cfg);
            if p.retries > bound {
                eprintln!(
                    "fig_overload: {} @{}×: {} retries exceed the budget's grant bound {bound}",
                    p.arm, p.multiplier, p.retries
                );
                failed = true;
            }
        }
    }
    match fig_overload::goodput_retention(&points) {
        Some(r) if r >= GATE_RETENTION => {
            eprintln!(
                "fig_overload: resilient v-MLP retains {:.0}% of 1× goodput at {GATE_MULTIPLIER}× \
                 (gate: ≥{:.0}%)",
                r * 100.0,
                GATE_RETENTION * 100.0
            );
        }
        Some(r) => {
            eprintln!(
                "fig_overload: GATE FAILED — resilient v-MLP retains only {:.0}% of 1× goodput \
                 at {GATE_MULTIPLIER}× (need ≥{:.0}%)",
                r * 100.0,
                GATE_RETENTION * 100.0
            );
            failed = true;
        }
        None => {
            eprintln!(
                "fig_overload: GATE FAILED — missing resilient v-MLP points or zero capacity"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
