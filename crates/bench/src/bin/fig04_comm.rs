//! Regenerates Fig 4 (communication-time distributions).
fn main() {
    print!("{}", mlp_bench::fig04_comm::report(2022));
}
