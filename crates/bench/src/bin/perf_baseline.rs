//! Tracked performance baseline: `cargo run --release -p mlp-bench --bin perf_baseline`.
//!
//! Times a fixed-seed fig14-style run (Constant pattern, 50 % high-V_r
//! mix, OVERDRIVE load) once per scheme with the ledger query counters
//! enabled, plus a naive-vs-indexed ledger micro comparison, and writes
//! the whole snapshot to `BENCH_sim.json` at the repo root. Commit the
//! file: future PRs diff against it, so the perf trajectory of the
//! scheduling hot path is recorded alongside the code.
//!
//! The run is deterministic (seed 42); wall-clock numbers of course vary
//! with the host, so compare ratios across commits made on the same box.

use mlp_bench::fig14_throughput::OVERDRIVE;
use mlp_bench::loads::rate_factor;
use mlp_bench::scale::Scale;
use mlp_cluster::ledger::query_stats::{self, LedgerQueryStats};
use mlp_cluster::{NaiveLedger, ResourceLedger};
use mlp_engine::config::MixSpec;
use mlp_engine::experiment::Experiment;
use mlp_engine::runner::ExperimentResult;
use mlp_engine::scheme::Scheme;
use mlp_model::{RequestCatalog, ResourceVector};
use mlp_sim::{SimDuration, SimRng, SimTime};
use rand::Rng;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 42;

#[derive(Serialize)]
struct SchemeBaseline {
    scheme: String,
    wall_ms: f64,
    arrived: usize,
    completed: usize,
    violation_rate: f64,
    /// Ledger operations issued by this run (process-global counters,
    /// reset per scheme; schemes run sequentially).
    ledger: LedgerQueryStats,
}

#[derive(Serialize)]
struct MicroCompare {
    reservations: usize,
    iters: u32,
    naive_ns_per_op: f64,
    indexed_ns_per_op: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Baseline {
    /// Schema/meaning version of this file.
    version: u32,
    scale: &'static str,
    seed: u64,
    high_ratio: f64,
    total_wall_ms: f64,
    schemes: Vec<SchemeBaseline>,
    /// Naive O(n) rescan vs indexed O(log n) profile, same 1000-point
    /// timeline, per ledger query kind.
    micro: Vec<(String, MicroCompare)>,
}

fn time_ns<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn micro_compare() -> Vec<(String, MicroCompare)> {
    const N: usize = 1000;
    let cap = ResourceVector::new(2.4, 2500.0, 350.0);
    let amt = ResourceVector::new(0.8, 300.0, 40.0);
    let mut indexed = ResourceLedger::new(cap);
    let mut naive = NaiveLedger::new(cap);
    let mut rng = SimRng::new(11);
    let span_us = N as u64 * 5_000;
    for _ in 0..N {
        let from = SimTime::from_micros(rng.rng().gen_range(0..span_us));
        let dur = SimDuration::from_micros(rng.rng().gen_range(5_000..50_000));
        indexed.reserve(from, from + dur, amt * 0.1);
        naive.reserve(from, from + dur, amt * 0.1);
    }
    let mid = SimTime::from_micros(span_us / 2);
    let horizon = SimTime::from_micros(span_us + 100_000);
    let dur = SimDuration::from_millis(25);

    let cases: Vec<(&str, f64, f64)> = vec![
        (
            "usage_at",
            time_ns(100_000, || naive.usage_at(mid)),
            time_ns(100_000, || indexed.usage_at(mid)),
        ),
        (
            "peak_usage",
            time_ns(20_000, || naive.peak_usage(SimTime::ZERO, horizon)),
            time_ns(20_000, || indexed.peak_usage(SimTime::ZERO, horizon)),
        ),
        (
            "earliest_fit",
            time_ns(20_000, || naive.earliest_fit(SimTime::from_micros(1000), horizon, dur, amt)),
            time_ns(20_000, || indexed.earliest_fit(SimTime::from_micros(1000), horizon, dur, amt)),
        ),
    ];
    cases
        .into_iter()
        .map(|(name, naive_ns, indexed_ns)| {
            (
                name.to_string(),
                MicroCompare {
                    reservations: N,
                    iters: if name == "usage_at" { 100_000 } else { 20_000 },
                    naive_ns_per_op: naive_ns,
                    indexed_ns_per_op: indexed_ns,
                    speedup: naive_ns / indexed_ns.max(1e-9),
                },
            )
        })
        .collect()
}

fn main() {
    let scale = Scale::small();
    let catalog = RequestCatalog::paper();
    let high_ratio = 0.5;
    let mix = MixSpec::HighRatio(high_ratio);
    let rate = scale.max_rate * rate_factor(mix, &catalog) * OVERDRIVE;

    eprintln!(
        "perf_baseline: fixed-seed ({SEED}) fig14-style run per scheme at --scale={} …",
        scale.label
    );

    query_stats::set_enabled(true);
    let total_start = Instant::now();
    let mut schemes = Vec::new();
    for scheme in Scheme::PAPER {
        let cfg = scale
            .config(scheme)
            .with_pattern(mlp_workload::WorkloadPattern::Constant)
            .with_mix(mix)
            .with_rate(rate)
            .with_seed(SEED);
        query_stats::reset();
        let start = Instant::now();
        let result: ExperimentResult =
            Experiment::from_config(cfg).catalog(&catalog).run().expect("baseline config is valid");
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        let ledger = query_stats::snapshot();
        eprintln!(
            "  {:<12} {:>8.1} ms  ({} completed; {} earliest_fit, {} peak, {} writes)",
            result.config.scheme.display_name(),
            wall_ms,
            result.completed,
            ledger.earliest_fit,
            ledger.peak_usage,
            ledger.writes,
        );
        schemes.push(SchemeBaseline {
            scheme: result.config.scheme.display_name(),
            wall_ms,
            arrived: result.arrived,
            completed: result.completed,
            violation_rate: result.violation_rate,
            ledger,
        });
    }
    query_stats::set_enabled(false);
    let total_wall_ms = total_start.elapsed().as_secs_f64() * 1000.0;

    eprintln!("  micro: naive vs indexed ledger on a 1000-reservation timeline …");
    let micro = micro_compare();
    for (name, m) in &micro {
        eprintln!(
            "  {:<12} naive {:>9.1} ns/op   indexed {:>8.1} ns/op   {:>6.1}×",
            name, m.naive_ns_per_op, m.indexed_ns_per_op, m.speedup
        );
    }

    let baseline = Baseline {
        version: 1,
        scale: scale.label,
        seed: SEED,
        high_ratio,
        total_wall_ms,
        schemes,
        micro,
    };
    // Merge rather than overwrite: other bins (fig_scale) keep their own
    // top-level keys in the same committed snapshot.
    let serde_json::Value::Object(entries) =
        serde_json::to_value(&baseline).expect("baseline serializes")
    else {
        unreachable!("Baseline serializes to an object")
    };
    mlp_bench::merge_bench_json(entries);
}
