//! Regenerates Fig 2 (execution-time heterogeneity of TrainTicket services).
fn main() {
    print!("{}", mlp_bench::fig02_heterogeneity::report(2022));
}
