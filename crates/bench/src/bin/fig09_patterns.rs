//! Regenerates Fig 9 (workload patterns L1/L2/L3).
fn main() {
    let scale = mlp_bench::scale_from_args();
    print!("{}", mlp_bench::fig09_patterns::report(scale, 2022));
}
