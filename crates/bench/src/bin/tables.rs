//! Prints the paper's Tables I, II, III, V and VI.
fn main() {
    print!("{}", mlp_bench::tables::all());
}
