//! The paper's tables: I (parallelism levels), II (volatility terms),
//! III (monitors/controllers), V (evaluated requests), VI (schemes).

use mlp_cluster::ControllerTool;
use mlp_core::parallelism::ParallelismLevel;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_model::{RequestCatalog, ResourceKind};

/// Table I — ILP vs TLP vs MLP vs RLP.
pub fn table1() -> String {
    let rows: Vec<Vec<String>> = ParallelismLevel::ALL
        .iter()
        .map(|p| {
            vec![
                p.name().to_string(),
                p.scheduling_level().to_string(),
                p.granularity().to_string(),
                p.key_approach().to_string(),
            ]
        })
        .collect();
    report::table(
        "Table I — ILP vs TLP vs MLP vs RLP",
        &["parallelism", "scheduling level", "granularity", "key opti. approach"],
        &rows,
    )
}

/// Table II — selection range of volatility terms.
pub fn table2() -> String {
    let rows = vec![
        vec!["I".into(), "1 (low) – 3 (high)".into(), "Inner Logic Variability".into()],
        vec!["S".into(), "1 (low) – 3 (high)".into(), "Sensitivity to Resource".into()],
        vec!["C".into(), "1–3: Var(RTT) from 100 to 400".into(), "Communication Overhead".into()],
    ];
    report::table(
        "Table II — selection range of volatility terms",
        &["abbr", "range", "description"],
        &rows,
    )
}

/// Table III — resource monitors and controllers.
pub fn table3() -> String {
    let rows: Vec<Vec<String>> = ResourceKind::ALL
        .iter()
        .map(|&k| {
            vec![
                format!("{k:?}"),
                "dockerstats".to_string(),
                ControllerTool::for_kind(k).name().to_string(),
            ]
        })
        .collect();
    report::table(
        "Table III — resource monitors and controllers",
        &["resource", "monitor", "controller"],
        &rows,
    )
}

/// Table V — evaluated requests with their computed volatility.
pub fn table5() -> String {
    let catalog = RequestCatalog::paper();
    let rows: Vec<Vec<String>> = catalog
        .requests
        .iter()
        .map(|r| {
            vec![
                format!("{:?} V_r", r.class()),
                r.name.clone(),
                format!("{:?}", r.benchmark),
                format!("{:.2}", r.volatility),
                format!("{} services", r.dag.len()),
                format!("SLO {:.0} ms", r.slo_ms),
            ]
        })
        .collect();
    report::table(
        "Table V — evaluated request types",
        &["category", "request", "benchmark", "V_r", "DAG size", "SLO"],
        &rows,
    )
}

/// Table VI — evaluated scheduling schemes.
pub fn table6() -> String {
    let desc = |s: Scheme| match s {
        Scheme::FairSched => ("Simple", "FCFS, allocate equal resource"),
        Scheme::CurSched => ("Simple", "FCFS, allocate by current load"),
        Scheme::PartProfile => ("Advanced", "Prior., allocate by performance profile"),
        Scheme::FullProfile => ("Advanced", "Prior., allocate by overall profile"),
        Scheme::VMlp => ("MLP Scheme", "Our proposal (v-MLP)"),
        Scheme::VMlpCustom(_) => ("MLP Scheme", "ablated v-MLP"),
    };
    let rows: Vec<Vec<String>> = Scheme::PAPER
        .into_iter()
        .map(|s| {
            let (cat, d) = desc(s);
            vec![cat.to_string(), s.label().to_string(), d.to_string()]
        })
        .collect();
    report::table("Table VI — evaluated schemes", &["category", "scheme", "description"], &rows)
}

/// All tables concatenated.
pub fn all() -> String {
    [table1(), table2(), table3(), table5(), table6()].join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t = all();
        for needle in [
            "Table I",
            "Table II",
            "Table III",
            "Table V",
            "Table VI",
            "Microservice",
            "cgroups cpuset",
            "compose-post",
            "Our proposal",
        ] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn table5_rows_match_paper_classes() {
        let t = table5();
        assert!(t.contains("High V_r"));
        assert!(t.contains("Mid V_r"));
        assert!(t.contains("Low V_r"));
        assert!(t.contains("getCheapest"));
        assert!(t.contains("read-user-timeline"));
    }
}
