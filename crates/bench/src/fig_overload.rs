//! Overload resilience — flash-crowd degradation trajectories.
//!
//! Sweeps a flash crowd (the offered rate steps to `multiplier ×` base for
//! half the horizon) across surge multipliers and four arms: the two
//! non-profiling/full-profiling baselines and v-MLP facing the raw surge
//! with every resilience mechanism off (`surge_only`), plus v-MLP behind
//! the full overload-resilience stack (`flash_crowd`: admission control,
//! retry budget, circuit breakers, brownout tiers). The figure this
//! regenerates is the paper-style graceful-degradation claim: without
//! resilience goodput collapses past saturation (queues grow without
//! bound and every completion blows its SLO); with it the admission gate
//! sheds the excess at the door and goodput holds near the 1× capacity of
//! the cluster. Every arm runs with the invariant auditor on — the three
//! overload invariants (retry-token conservation, legal breaker walks,
//! admission-log feasibility replay) gate alongside the classic ones.

use crate::scale::Scale;
use mlp_engine::config::ExperimentConfig;
use mlp_engine::experiment::Experiment;
use mlp_engine::registry::SchemeSpec;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_engine::sweep::SweepConfig;
use mlp_sched::{OverloadConfig, RetryBudget};
use mlp_workload::patterns::WorkloadPattern;
use serde::Serialize;

/// Flash-crowd multipliers swept (1× is the capacity reference).
pub const MULTIPLIERS: [f64; 4] = [1.0, 2.0, 3.0, 5.0];

/// The default overload sweep: the two baselines and v-MLP, figure order
/// (`sweeps/overload.json` commits the same list). The *last* swept
/// scheme additionally runs behind the resilience stack, so the default
/// reproduces the historical four arms exactly.
pub fn default_sweep() -> SweepConfig {
    SweepConfig::new(vec![Scheme::CurSched.spec(), Scheme::FullProfile.spec(), Scheme::VMlp.spec()])
}

/// The goodput-retention acceptance gate: resilient v-MLP at
/// [`GATE_MULTIPLIER`]× must keep at least this fraction of its own 1×
/// goodput.
pub const GATE_RETENTION: f64 = 0.8;

/// The surge multiplier the retention gate is evaluated at.
pub const GATE_MULTIPLIER: f64 = 3.0;

/// One (arm, multiplier) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadPoint {
    /// Scheme label, with `+resil` when the resilience stack is on.
    pub arm: String,
    /// Underlying scheme label (without the resilience suffix).
    pub scheme: String,
    /// Whether the resilience mechanisms were active.
    pub resilience: bool,
    /// Flash-crowd rate multiplier.
    pub multiplier: f64,
    /// Requests that arrived (offered load grows with the multiplier).
    pub arrived: usize,
    /// Requests completed by cut-off.
    pub completed: usize,
    /// Requests unfinished at cut-off (includes everything shed).
    pub unfinished: usize,
    /// Arrivals refused by the admission gate.
    pub shed_requests: usize,
    /// SLO-compliant completions per second — the claim's y-axis.
    pub goodput_rps: f64,
    /// All completions per second.
    pub throughput_rps: f64,
    /// End-to-end P99 latency, ms.
    pub p99_ms: f64,
    /// SLO-violation fraction (unfinished counted as violated).
    pub violation_rate: f64,
    /// DAG leaves skipped by brownout branch shedding.
    pub branch_sheds: u64,
    /// Retries refused by the global token budget.
    pub retries_denied: u64,
    /// Retries actually issued (scheduler plus engine fallback).
    pub retries: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Peak overload pressure signal.
    pub peak_pressure: f64,
    /// Invariant-auditor violations (must be zero).
    pub invariant_violations: u64,
}

/// Admission cap on total in-system requests for a given base rate:
/// roughly half a second of offered load. The cap is the lever that
/// keeps queueing delay inside the SLO envelope — a backlog sized in
/// seconds would make every admitted request violate a sub-second SLO
/// even though the cluster never falls over — while staying above the
/// nominal 1× in-flight plateau so an unsurged run almost never sheds.
pub fn queue_cap(max_rate: f64) -> u32 {
    ((max_rate * 0.5).ceil() as u32).max(16)
}

/// The overload config for one arm: surge between 20% and 70% of the
/// horizon, resilience on or off.
pub fn overload_for(scale: &Scale, multiplier: f64, resilience: bool) -> OverloadConfig {
    let start = 0.2 * scale.horizon_s;
    let duration = 0.5 * scale.horizon_s;
    let mut o = if resilience {
        OverloadConfig::flash_crowd(multiplier, start, duration)
    } else {
        OverloadConfig::surge_only(multiplier, start, duration)
    };
    o.max_queue_depth = queue_cap(scale.max_rate);
    o
}

/// The experiment config for one cell: constant base pattern (the surge is
/// the only nonstationarity), auditor on.
pub fn config_for(
    scale: &Scale,
    scheme: impl Into<SchemeSpec>,
    multiplier: f64,
    resilience: bool,
    seed: u64,
) -> ExperimentConfig {
    scale
        .config(scheme)
        .with_pattern(WorkloadPattern::Constant)
        .with_seed(seed)
        .with_auditor(true)
        .with_overload(overload_for(scale, multiplier, resilience))
}

/// Upper bound on retries the token budget can possibly grant over the
/// run (burst + refill over the drained horizon). The bin gates resilient
/// arms' issued retries against this.
pub fn retry_grant_bound(cfg: &ExperimentConfig) -> u64 {
    let o = cfg.overload;
    RetryBudget::new(o.retry_burst, o.retry_rate_per_s)
        .grant_bound(cfg.horizon_s * cfg.drain_factor)
}

/// Runs one cell.
pub fn data_point(
    scale: &Scale,
    scheme: impl Into<SchemeSpec>,
    multiplier: f64,
    resilience: bool,
    seed: u64,
) -> OverloadPoint {
    let cfg = config_for(scale, scheme, multiplier, resilience, seed);
    let label = cfg.scheme.display_name();
    let r = Experiment::from_config(cfg).run().expect("overload config is valid");
    let arm = if resilience { format!("{label}+resil") } else { label.clone() };
    OverloadPoint {
        arm,
        scheme: label,
        resilience,
        multiplier,
        arrived: r.arrived,
        completed: r.completed,
        unfinished: r.unfinished,
        shed_requests: r.shed_requests,
        goodput_rps: r.goodput(),
        throughput_rps: r.throughput(),
        p99_ms: r.latency_ms[2],
        violation_rate: r.violation_rate,
        branch_sheds: r.branch_sheds,
        retries_denied: r.retries_denied,
        retries: r.fault_retries,
        breaker_opens: r.breaker_opens,
        peak_pressure: r.peak_pressure,
        invariant_violations: r.invariant_violations,
    }
}

/// The full sweep: every swept scheme faces the raw surge, and the last
/// one additionally runs behind the resilience stack — × every
/// multiplier.
pub fn data_sweep(scale: &Scale, seed: u64, sweep: &SweepConfig) -> Vec<OverloadPoint> {
    let mut arms: Vec<(SchemeSpec, bool)> =
        sweep.schemes.iter().map(|s| (s.clone(), false)).collect();
    if let Some(last) = sweep.schemes.last() {
        arms.push((last.clone(), true));
    }
    let mut points = Vec::with_capacity(arms.len() * MULTIPLIERS.len());
    for (scheme, resilience) in &arms {
        for &m in &MULTIPLIERS {
            eprintln!(
                "fig_overload: {}{} × {m}×…",
                scheme.display_name(),
                if *resilience { "+resil" } else { "" }
            );
            points.push(data_point(scale, scheme.clone(), m, *resilience, seed));
        }
    }
    points
}

/// [`data_sweep`] over the default overload sweep.
pub fn data(scale: &Scale, seed: u64) -> Vec<OverloadPoint> {
    data_sweep(scale, seed, &default_sweep())
}

/// The resilient arm's point at a multiplier, if present (there is one
/// resilient arm per sweep: its last scheme).
pub fn resilient_arm_at(points: &[OverloadPoint], multiplier: f64) -> Option<&OverloadPoint> {
    points.iter().find(|p| p.resilience && p.multiplier == multiplier)
}

/// Goodput retained by the resilient arm at [`GATE_MULTIPLIER`]× relative
/// to its own 1× capacity (the acceptance gate's ratio). `None` when
/// either point is missing or the 1× goodput is zero.
pub fn goodput_retention(points: &[OverloadPoint]) -> Option<f64> {
    let capacity = resilient_arm_at(points, 1.0)?.goodput_rps;
    let surged = resilient_arm_at(points, GATE_MULTIPLIER)?.goodput_rps;
    if capacity > 0.0 {
        Some(surged / capacity)
    } else {
        None
    }
}

/// Renders the degradation-trajectory table.
pub fn report(points: &[OverloadPoint], scale: &Scale) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.arm.clone(),
                format!("{:.0}×", p.multiplier),
                format!("{}", p.arrived),
                format!("{}", p.completed),
                format!("{}", p.shed_requests),
                format!("{:.1}", p.goodput_rps),
                format!("{:.1}", p.throughput_rps),
                format!("{:.1}", p.p99_ms),
                format!("{:.1}%", p.violation_rate * 100.0),
                format!("{}", p.branch_sheds),
                format!("{}", p.retries_denied),
                format!("{}", p.breaker_opens),
                format!("{:.2}", p.peak_pressure),
                format!("{}", p.invariant_violations),
            ]
        })
        .collect();
    report::table(
        &format!(
            "Overload — flash crowd at 20–70% of the horizon on {} machines, base {} req/s, \
             auditor on ({})",
            scale.machines, scale.max_rate, scale.label
        ),
        &[
            "arm",
            "surge",
            "arrived",
            "done",
            "shed",
            "goodput",
            "thr r/s",
            "p99 ms",
            "viol",
            "br-shed",
            "rt-deny",
            "brk-open",
            "peak-p",
            "audit viol",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_cap_tracks_rate_with_a_floor() {
        assert_eq!(queue_cap(84.0), 42);
        assert_eq!(queue_cap(1000.0), 500);
        assert_eq!(queue_cap(4.0), 16, "floor binds at tiny rates");
    }

    #[test]
    fn overload_configs_validate_at_every_scale() {
        for scale in [Scale::tiny(), Scale::small(), Scale::paper()] {
            for &m in &MULTIPLIERS {
                for resil in [false, true] {
                    let o = overload_for(&scale, m, resil);
                    assert!(o.enabled);
                    assert_eq!(o.resilience, resil);
                    o.validate().expect("sweep config must be valid");
                }
            }
        }
    }

    /// A tiny flash crowd run through the resilient arm has the acceptance
    /// shape: conservation holds (arrived = completed + unfinished with
    /// shed counted inside unfinished), the auditor is clean, and the gate
    /// actually shed something at 3× — the mechanisms demonstrably engaged.
    #[test]
    fn tiny_resilient_surge_sheds_and_stays_clean() {
        let scale = Scale::tiny();
        let p = data_point(&scale, Scheme::VMlp, 3.0, true, 7);
        assert_eq!(p.invariant_violations, 0, "auditor must stay clean");
        assert_eq!(p.arrived, p.completed + p.unfinished, "request conservation with shedding");
        assert!(p.shed_requests > 0, "a 3× surge must trip the admission gate");
        assert!(p.completed > 0, "degradation must be graceful, not total");
        assert!(p.peak_pressure > 0.0);
    }

    /// The same surge without resilience sheds nothing — the baseline arm
    /// really is the untreated control.
    #[test]
    fn tiny_surge_only_never_sheds() {
        let scale = Scale::tiny();
        let p = data_point(&scale, Scheme::VMlp, 3.0, false, 7);
        assert_eq!(p.shed_requests, 0);
        assert_eq!(p.branch_sheds, 0);
        assert_eq!(p.retries_denied, 0);
        assert_eq!(p.invariant_violations, 0);
    }
}
