//! Fig 13 — performance: tail latency normalized to FairSched.
//!
//! The mixed stream is separated into three single-class streams (low /
//! mid / high V_r, work-normalized); per pattern and stream, each scheme's
//! p99 latency is reported normalized to FairSched (= 1.0). Expected
//! shape: simple ≈ 1, advanced < 1, v-MLP lowest; v-MLP's margin grows on
//! the mid/high-V_r streams.

use crate::evalrun::{run_cells, Cell};
use crate::scale::Scale;
use mlp_engine::config::MixSpec;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_model::VolatilityClass;
use mlp_workload::WorkloadPattern;

/// Classes in figure order.
pub const CLASSES: [VolatilityClass; 3] =
    [VolatilityClass::Low, VolatilityClass::Mid, VolatilityClass::High];

/// `data[pattern][class][scheme] = (raw p99 ms, normalized to FairSched)`.
/// All 45 cells run in one parallel sweep.
pub fn data(scale: Scale, seed: u64) -> Vec<Vec<Vec<(f64, f64)>>> {
    let mut cells = Vec::new();
    for pattern in WorkloadPattern::PAPER {
        for class in CLASSES {
            for scheme in Scheme::PAPER {
                cells.push(Cell {
                    scheme: scheme.into(),
                    pattern,
                    mix: MixSpec::SingleClass(class),
                    rate_mult: 1.0,
                });
            }
        }
    }
    let results = run_cells(scale, &cells, seed);
    let mut it = results.chunks(Scheme::PAPER.len());
    WorkloadPattern::PAPER
        .iter()
        .map(|_| {
            CLASSES
                .iter()
                .map(|_| {
                    let chunk = it.next().expect("grid shape");
                    let p99s: Vec<f64> = chunk.iter().map(|r| r.latency_ms[2]).collect();
                    let fair = p99s[0].max(1e-9);
                    p99s.iter().map(|&p| (p, p / fair)).collect()
                })
                .collect()
        })
        .collect()
}

/// Renders one table per workload pattern.
pub fn report(scale: Scale, seed: u64) -> String {
    let d = data(scale, seed);
    let mut out = String::new();
    for (pi, pattern) in WorkloadPattern::PAPER.iter().enumerate() {
        let rows: Vec<Vec<String>> = CLASSES
            .iter()
            .enumerate()
            .map(|(ci, class)| {
                let mut row = vec![format!("{class:?} V_r")];
                for &(raw, norm) in &d[pi][ci] {
                    row.push(format!("{:.2} ({} ms)", norm, report::f(raw)));
                }
                row
            })
            .collect();
        out.push_str(&report::table(
            &format!(
                "Fig 13 — p99 tail latency normalized to FairSched, pattern {}",
                pattern.label()
            ),
            &["stream", "FairSched", "CurSched", "PartProfile", "FullProfile", "v-MLP"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::evalrun::{run_cells, Cell};

    /// One cell of the grid at tiny scale: normalization puts FairSched at
    /// exactly 1.0 by construction, and v-MLP's raw p99 is positive.
    #[test]
    fn fairsched_is_the_unit_baseline() {
        let cells: Vec<Cell> = [Scheme::FairSched, Scheme::VMlp]
            .into_iter()
            .map(|scheme| Cell {
                scheme: scheme.into(),
                pattern: WorkloadPattern::L1Pulse,
                mix: MixSpec::SingleClass(VolatilityClass::Mid),
                rate_mult: 1.0,
            })
            .collect();
        let res = run_cells(Scale::tiny(), &cells, 8);
        let fair = res[0].latency_ms[2];
        assert!(fair > 0.0);
        assert!((fair / fair - 1.0).abs() < 1e-12);
        assert!(res[1].latency_ms[2] > 0.0);
    }
}
