//! Offered-load normalization across request mixes.
//!
//! A "high-V_r only" stream carries far more work per request than a
//! "low-V_r only" stream (compose-post invokes 11 services, timeline reads
//! 3). Comparing streams at the same *request* rate would conflate
//! volatility with load, so per-class experiments (Figs 13–14) scale each
//! stream's rate to offer the same CPU-work as the balanced mix does.

use mlp_engine::config::MixSpec;
use mlp_model::{RequestCatalog, RequestTypeId};

/// Expected CPU-work of one request in core-milliseconds: the sum over its
/// DAG of `demand_cpu × nominal execution time`.
pub fn cpu_work_core_ms(rt: RequestTypeId, catalog: &RequestCatalog) -> f64 {
    let rt = catalog.request(rt);
    rt.dag
        .nodes()
        .iter()
        .map(|n| {
            let svc = catalog.services.get(n.service);
            svc.demand.cpu * svc.base_ms * n.work_factor
        })
        .sum()
}

/// Weighted mean CPU-work per request of a mix.
pub fn mix_cpu_work_core_ms(mix: &[(RequestTypeId, f64)], catalog: &RequestCatalog) -> f64 {
    let total_w: f64 = mix.iter().map(|(_, w)| w).sum();
    mix.iter().map(|&(id, w)| w * cpu_work_core_ms(id, catalog)).sum::<f64>() / total_w.max(1e-12)
}

/// Rate multiplier that makes `mix` offer the same CPU-work per second as
/// the balanced mix at the same nominal rate, clamped into `[0.25, 4]`:
/// the timeline-read-only stream is ~13× lighter per request than the
/// balanced mix, and a full work-equalizing rate would exceed the paper's
/// 1000 req/s ceiling several times over (the experiment would measure
/// admission plumbing, not scheduling).
pub fn rate_factor(mix: MixSpec, catalog: &RequestCatalog) -> f64 {
    let balanced = mix_cpu_work_core_ms(&MixSpec::Balanced.resolve(catalog), catalog);
    let this = mix_cpu_work_core_ms(&mix.resolve(catalog), catalog);
    (balanced / this.max(1e-12)).clamp(0.25, 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_model::VolatilityClass;

    #[test]
    fn high_requests_carry_more_work() {
        let cat = RequestCatalog::paper();
        let compose = cat.request_by_name("compose-post").unwrap().id;
        let read = cat.request_by_name("read-user-timeline").unwrap().id;
        let wc = cpu_work_core_ms(compose, &cat);
        let wr = cpu_work_core_ms(read, &cat);
        assert!(wc > 5.0 * wr, "compose {wc} vs read {wr}");
    }

    #[test]
    fn rate_factors_equalize_work() {
        let cat = RequestCatalog::paper();
        for class in [VolatilityClass::Mid, VolatilityClass::High] {
            let mix = MixSpec::SingleClass(class);
            let f = rate_factor(mix, &cat);
            let work = mix_cpu_work_core_ms(&mix.resolve(&cat), &cat);
            let balanced = mix_cpu_work_core_ms(&MixSpec::Balanced.resolve(&cat), &cat);
            assert!((work * f - balanced).abs() / balanced < 1e-9, "{class:?}");
        }
        // The low-only stream hits the clamp.
        assert_eq!(rate_factor(MixSpec::SingleClass(VolatilityClass::Low), &cat), 4.0);
        // Low-class streams run at a higher request rate, high at lower.
        assert!(rate_factor(MixSpec::SingleClass(VolatilityClass::Low), &cat) > 1.0);
        assert!(rate_factor(MixSpec::SingleClass(VolatilityClass::High), &cat) < 1.0);
    }

    #[test]
    fn balanced_factor_is_one() {
        let cat = RequestCatalog::paper();
        assert!((rate_factor(MixSpec::Balanced, &cat) - 1.0).abs() < 1e-9);
    }
}
