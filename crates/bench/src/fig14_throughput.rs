//! Fig 14 — performance: throughput normalized to v-MLP.
//!
//! The ratio of high-V_r requests in the stream is swept from 0 % to
//! 100 % (work-normalized, offered slightly above sustainable capacity so
//! schemes actually differ in completions); throughput = requests finished
//! within the scheduling period, normalized to v-MLP. Expected shape: all
//! baselines ≤ 1, with the gap widening as the high-V_r ratio grows.

use crate::evalrun::{run_cells, Cell};
use crate::loads::rate_factor;
use crate::scale::Scale;
use mlp_engine::config::MixSpec;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_model::RequestCatalog;
use mlp_workload::WorkloadPattern;

/// Swept high-V_r ratios.
pub const RATIOS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Rate multiplier over the work-normalized stream. 0.8 keeps the
/// *sustained* constant load at roughly the level the L1–L3 patterns reach
/// at their peaks — heavy enough that schemes differ, inside the operating
/// range where every scheme can admit its traffic. (Driving a constant
/// stream at or past sustainable capacity rewards schemes that
/// overcommit-and-cap: completions stay high while every reply blows its
/// SLO — a regime outside the paper's evaluation envelope; see
/// EXPERIMENTS.md.)
pub const OVERDRIVE: f64 = 0.8;

/// `data[ratio][scheme] = (scheme, raw completions/s, raw goodput/s,
/// goodput normalized to v-MLP)`. All cells run in one parallel sweep.
///
/// "Throughput" is the paper's "number of finished requests within a
/// certain scheduling period"; we report raw completions *and* goodput
/// (SLO-compliant completions) — in an interactive service a reply beyond
/// its SLO is useless, and the paper's v-MLP advantage reproduces on the
/// goodput reading (see EXPERIMENTS.md).
pub fn data(scale: Scale, seed: u64) -> Vec<Vec<(&'static str, f64, f64, f64)>> {
    let catalog = RequestCatalog::paper();
    let cells: Vec<Cell> = RATIOS
        .iter()
        .flat_map(|&ratio| {
            let mix = MixSpec::HighRatio(ratio);
            // Cap the *effective* work-normalization factor at 2: the
            // low-ratio mixes are so light per request that full
            // equalization would overdrive them into request-rate regimes
            // where the experiment measures queue plumbing, not
            // completions. Low ratios are the flat part of the paper's
            // curve anyway.
            let f = rate_factor(mix, &catalog);
            let rate_mult = OVERDRIVE * (2.0 / f).min(1.0);
            Scheme::PAPER.into_iter().map(move |scheme| Cell {
                scheme,
                pattern: WorkloadPattern::Constant,
                mix,
                rate_mult,
            })
        })
        .collect();
    run_cells(scale, &cells, seed)
        .chunks(Scheme::PAPER.len())
        .map(|res| {
            let vmlp = res[4].goodput.max(1e-9);
            res.iter().map(|r| (r.scheme, r.throughput, r.goodput, r.goodput / vmlp)).collect()
        })
        .collect()
}

/// Renders the sweep.
pub fn report(scale: Scale, seed: u64) -> String {
    let d = data(scale, seed);
    let rows: Vec<Vec<String>> = RATIOS
        .iter()
        .enumerate()
        .map(|(ri, ratio)| {
            let mut row = vec![format!("{:.0}% high", ratio * 100.0)];
            for (_, thr, good, norm) in &d[ri] {
                row.push(format!("{norm:.2} ({good:.0} good / {thr:.0} done /s)"));
            }
            row
        })
        .collect();
    report::table(
        "Fig 14 — goodput (SLO-compliant completions) normalized to v-MLP vs ratio of high-V_r requests",
        &["high ratio", "FairSched", "CurSched", "PartProfile", "FullProfile", "v-MLP"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::evalrun::{run_cells, Cell};

    /// One overdriven cell: throughput is positive and self-normalization
    /// is exactly 1.
    #[test]
    fn vmlp_column_is_unit() {
        let cells = [Cell {
            scheme: Scheme::VMlp,
            pattern: WorkloadPattern::Constant,
            mix: MixSpec::HighRatio(0.5),
            rate_mult: OVERDRIVE,
        }];
        let res = run_cells(Scale::tiny(), &cells, 9);
        assert!(res[0].throughput > 0.0);
        assert!(res[0].goodput <= res[0].throughput);
        assert!((res[0].goodput / res[0].goodput.max(1e-9) - 1.0).abs() < 1e-9);
    }
}
