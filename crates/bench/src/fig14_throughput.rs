//! Fig 14 — performance: throughput normalized to v-MLP.
//!
//! The ratio of high-V_r requests in the stream is swept from 0 % to
//! 100 % (work-normalized, offered slightly above sustainable capacity so
//! schemes actually differ in completions); throughput = requests finished
//! within the scheduling period, normalized to v-MLP. Expected shape: all
//! baselines ≤ 1, with the gap widening as the high-V_r ratio grows.
//!
//! The scheme columns come from a [`SweepConfig`]: the default sweep is
//! the paper's five schemes in Table VI order (committed as
//! `sweeps/paper.json`), and the `fig14_throughput` binary accepts
//! `--sweep=FILE` to race any registered contender through the same axis.

use crate::evalrun::{run_cells, Cell};
use crate::loads::rate_factor;
use crate::scale::Scale;
use mlp_engine::config::MixSpec;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_engine::sweep::SweepConfig;
use mlp_model::RequestCatalog;
use mlp_workload::WorkloadPattern;

/// Swept high-V_r ratios.
pub const RATIOS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Rate multiplier over the work-normalized stream. 0.8 keeps the
/// *sustained* constant load at roughly the level the L1–L3 patterns reach
/// at their peaks — heavy enough that schemes differ, inside the operating
/// range where every scheme can admit its traffic. (Driving a constant
/// stream at or past sustainable capacity rewards schemes that
/// overcommit-and-cap: completions stay high while every reply blows its
/// SLO — a regime outside the paper's evaluation envelope; see
/// EXPERIMENTS.md.)
pub const OVERDRIVE: f64 = 0.8;

/// The default scheme columns: the paper's five schemes, figure order.
pub fn default_sweep() -> SweepConfig {
    SweepConfig::new(Scheme::PAPER.iter().map(|s| s.spec()).collect())
}

/// Index of the normalization anchor inside a sweep: the unablated
/// `vmlp` column when present, else the last column (so a custom sweep
/// without v-MLP still normalizes to *something* stable).
pub fn anchor_index(sweep: &SweepConfig) -> usize {
    sweep
        .schemes
        .iter()
        .position(|s| s.name() == "vmlp" && s.params().is_empty())
        .unwrap_or(sweep.schemes.len() - 1)
}

/// `data[ratio][scheme] = (label, raw completions/s, raw goodput/s,
/// goodput normalized to the anchor)`. All cells run in one parallel
/// sweep.
///
/// "Throughput" is the paper's "number of finished requests within a
/// certain scheduling period"; we report raw completions *and* goodput
/// (SLO-compliant completions) — in an interactive service a reply beyond
/// its SLO is useless, and the paper's v-MLP advantage reproduces on the
/// goodput reading (see EXPERIMENTS.md).
pub fn data_sweep(
    scale: Scale,
    seed: u64,
    sweep: &SweepConfig,
) -> Vec<Vec<(String, f64, f64, f64)>> {
    let catalog = RequestCatalog::paper();
    let anchor = anchor_index(sweep);
    let cells: Vec<Cell> = RATIOS
        .iter()
        .flat_map(|&ratio| {
            let mix = MixSpec::HighRatio(ratio);
            // Cap the *effective* work-normalization factor at 2: the
            // low-ratio mixes are so light per request that full
            // equalization would overdrive them into request-rate regimes
            // where the experiment measures queue plumbing, not
            // completions. Low ratios are the flat part of the paper's
            // curve anyway.
            let f = rate_factor(mix, &catalog);
            let rate_mult = OVERDRIVE * (2.0 / f).min(1.0);
            sweep.schemes.iter().map(move |spec| Cell {
                scheme: spec.clone(),
                pattern: WorkloadPattern::Constant,
                mix,
                rate_mult,
            })
        })
        .collect();
    run_cells(scale, &cells, seed)
        .chunks(sweep.schemes.len())
        .map(|res| {
            let vmlp = res[anchor].goodput.max(1e-9);
            res.iter()
                .map(|r| (r.scheme.clone(), r.throughput, r.goodput, r.goodput / vmlp))
                .collect()
        })
        .collect()
}

/// [`data_sweep`] over the default (paper) sweep.
pub fn data(scale: Scale, seed: u64) -> Vec<Vec<(String, f64, f64, f64)>> {
    data_sweep(scale, seed, &default_sweep())
}

/// Renders one sweep.
pub fn report_sweep(scale: Scale, seed: u64, sweep: &SweepConfig) -> String {
    let d = data_sweep(scale, seed, sweep);
    let anchor_label = sweep.schemes[anchor_index(sweep)].display_name();
    let rows: Vec<Vec<String>> = RATIOS
        .iter()
        .enumerate()
        .map(|(ri, ratio)| {
            let mut row = vec![format!("{:.0}% high", ratio * 100.0)];
            for (_, thr, good, norm) in &d[ri] {
                row.push(format!("{norm:.2} ({good:.0} good / {thr:.0} done /s)"));
            }
            row
        })
        .collect();
    let mut headers: Vec<String> = vec!["high ratio".to_string()];
    headers.extend(sweep.labels());
    let header_refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
    report::table(
        &format!(
            "Fig 14 — goodput (SLO-compliant completions) normalized to {anchor_label} vs ratio \
             of high-V_r requests"
        ),
        &header_refs,
        &rows,
    )
}

/// Renders the default (paper) sweep.
pub fn report(scale: Scale, seed: u64) -> String {
    report_sweep(scale, seed, &default_sweep())
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::evalrun::{run_cells, Cell};
    use mlp_engine::registry::SchemeSpec;

    /// One overdriven cell: throughput is positive and self-normalization
    /// is exactly 1.
    #[test]
    fn vmlp_column_is_unit() {
        let cells = [Cell {
            scheme: Scheme::VMlp.into(),
            pattern: WorkloadPattern::Constant,
            mix: MixSpec::HighRatio(0.5),
            rate_mult: OVERDRIVE,
        }];
        let res = run_cells(Scale::tiny(), &cells, 9);
        assert!(res[0].throughput > 0.0);
        assert!(res[0].goodput <= res[0].throughput);
        assert!((res[0].goodput / res[0].goodput.max(1e-9) - 1.0).abs() < 1e-9);
    }

    /// The default sweep reproduces the historically hardcoded scheme
    /// list, and the anchor is the unablated v-MLP column wherever it
    /// sits in the order.
    #[test]
    fn default_sweep_matches_the_paper_columns() {
        let sweep = default_sweep();
        assert_eq!(
            sweep.labels(),
            ["FairSched", "CurSched", "PartProfile", "FullProfile", "v-MLP"]
        );
        assert_eq!(anchor_index(&sweep), 4);
        let shuffled =
            SweepConfig::new(vec![SchemeSpec::named("vmlp"), SchemeSpec::named("fairsched")]);
        assert_eq!(anchor_index(&shuffled), 0);
        let no_vmlp = SweepConfig::new(vec![
            SchemeSpec::named("fairsched"),
            SchemeSpec::parse("vmlp:healing=off").unwrap(),
        ]);
        assert_eq!(anchor_index(&no_vmlp), 1, "ablated v-MLP is not the anchor");
    }
}
