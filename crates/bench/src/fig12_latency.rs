//! Fig 12 — performance: latency distribution under scaled workload
//! levels.
//!
//! A mixed (balanced) request stream at several QPS levels; per scheme the
//! p50/p90/p99 of the end-to-end latency distribution. v-MLP should win at
//! every percentile, with the margin growing at higher load.

use crate::evalrun::{run_cells, Cell};
use crate::scale::Scale;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_workload::WorkloadPattern;

/// Workload levels as fractions of the scale's peak rate.
pub const LEVELS: [f64; 3] = [0.4, 0.65, 0.9];

/// `data[level][scheme] = [p50, p90, p99]` in ms. All cells run in one
/// parallel sweep.
pub fn data(scale: Scale, seed: u64) -> Vec<Vec<(String, [f64; 3])>> {
    let cells: Vec<Cell> = LEVELS
        .iter()
        .flat_map(|&level| {
            Scheme::PAPER.into_iter().map(move |scheme| Cell {
                pattern: WorkloadPattern::Constant,
                rate_mult: level,
                ..Cell::new(scheme)
            })
        })
        .collect();
    run_cells(scale, &cells, seed)
        .chunks(Scheme::PAPER.len())
        .map(|chunk| chunk.iter().map(|r| (r.scheme.clone(), r.latency_ms)).collect())
        .collect()
}

/// Renders one table per workload level.
pub fn report(scale: Scale, seed: u64) -> String {
    let d = data(scale, seed);
    let mut out = String::new();
    for (li, per_scheme) in d.iter().enumerate() {
        let rows: Vec<Vec<String>> = per_scheme
            .iter()
            .map(|(scheme, l)| {
                vec![scheme.to_string(), report::f(l[0]), report::f(l[1]), report::f(l[2])]
            })
            .collect();
        out.push_str(&report::table(
            &format!(
                "Fig 12 — latency distribution (ms), workload level {:.0}% of peak",
                LEVELS[li] * 100.0
            ),
            &["scheme", "p50", "p90", "p99"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_load() {
        let scale = Scale::tiny();
        let d = data(scale, 6);
        // FairSched p99 at 100% ≥ p99 at 40%.
        let p99_low = d[0][0].1[2];
        let p99_high = d[2][0].1[2];
        assert!(p99_high >= p99_low * 0.8, "p99 {p99_low} -> {p99_high}");
    }
}
