//! Fig 9 — workload patterns in realistic datacenters.
//!
//! L1: pulse-like peak; L2: fluctuating; L3: periodic with wide peaks.
//! Maximum rate 1000 req/s (scaled at smaller scales).

use crate::scale::Scale;
use mlp_engine::report;
use mlp_model::RequestCatalog;
use mlp_sim::SimRng;
use mlp_workload::{empirical_rate, generate_stream, WorkloadPattern};

/// Renders the three rate curves plus an empirical arrival check.
pub fn report(scale: Scale, seed: u64) -> String {
    let catalog = RequestCatalog::paper();
    let mix = catalog.balanced_mix();
    let mut out = String::new();
    for p in WorkloadPattern::PAPER {
        let series = p.rate_series(scale.horizon_s, 1.0, scale.max_rate);
        out.push_str(&report::series(
            &format!("Fig 9 — {} target rate (req/s, max {})", p.label(), scale.max_rate),
            1.0,
            series.values(),
        ));
        let mut rng = SimRng::new(seed);
        let arrivals = generate_stream(p, scale.max_rate, scale.horizon_s, &mix, &mut rng);
        let emp = empirical_rate(&arrivals, scale.horizon_s, 5.0);
        out.push_str(&format!(
            "  generated {} arrivals; empirical mean {:.1} req/s vs target mean {:.1} req/s\n\n",
            arrivals.len(),
            emp.mean(),
            series.mean(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_rates_track_targets() {
        let catalog = RequestCatalog::paper();
        let mix = catalog.balanced_mix();
        let scale = Scale::small();
        for p in WorkloadPattern::PAPER {
            let series = p.rate_series(scale.horizon_s, 1.0, scale.max_rate);
            let mut rng = SimRng::new(9);
            let arrivals = generate_stream(p, scale.max_rate, scale.horizon_s, &mix, &mut rng);
            let achieved = arrivals.len() as f64 / scale.horizon_s;
            let target = series.mean();
            assert!(
                (achieved - target).abs() / target < 0.1,
                "{}: achieved {achieved:.1} vs target {target:.1}",
                p.label()
            );
        }
    }

    #[test]
    fn report_covers_all_patterns() {
        let r = report(Scale::tiny(), 1);
        for l in ["L1", "L2", "L3"] {
            assert!(r.contains(l), "missing {l}");
        }
    }
}
