//! Soak run — bounded-memory streaming lifecycle at millions of requests.
//!
//! Drives v-MLP and two baselines through a fixed count of open-loop
//! arrivals (Poisson at a constant offered rate, generated lazily by
//! `OpenLoopSource`) on a 256-machine fleet partitioned into 16 shards,
//! with the invariant auditor sampling the whole run and the collector in
//! streaming mode. The figure this regenerates is the memory contract of
//! the streaming refactor: peak request-table occupancy plateaus near
//! offered rate × residence time while total arrivals grow without bound,
//! and the auditor stays clean the whole way. Paper scale soaks 2 million
//! requests per scheme; small/tiny shrink the request target (not the
//! cluster) so CI exercises the identical shape.

use crate::scale::Scale;
use mlp_cluster::ShardPolicy;
use mlp_engine::config::ExperimentConfig;
use mlp_engine::experiment::Experiment;
use mlp_engine::registry::SchemeSpec;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_engine::sweep::SweepConfig;
use mlp_workload::patterns::WorkloadPattern;
use serde::Serialize;
use std::time::Instant;

/// Fleet size of the soak cluster.
pub const MACHINES: usize = 256;

/// Shards the fleet is partitioned into (one per 16 machines, matching
/// `fig_scale`'s sharding regime).
pub const SHARDS: usize = 16;

/// Offered load per machine, req/s — the same small-scale regime as
/// `fig_scale`, backed off to a rate the fleet can sustain indefinitely
/// (an unstable queue would grow the in-flight table with run length and
/// defeat the plateau the soak is meant to prove).
pub const RATE_PER_MACHINE: f64 = 5.0;

/// Schemes soaked: today's non-profiling baseline, the full-profiling
/// baseline, and the paper's contribution (the default sweep;
/// `sweeps/soak.json` commits the same list).
pub const SCHEMES: [Scheme; 3] = [Scheme::CurSched, Scheme::FullProfile, Scheme::VMlp];

/// The default soak sweep as a [`SweepConfig`].
pub fn default_sweep() -> SweepConfig {
    SweepConfig::new(SCHEMES.iter().map(|s| s.spec()).collect())
}

/// Open-loop arrivals pulled per scheme at a given scale. Paper scale is
/// the acceptance target (≥2M requests); smaller scales keep the cluster
/// and rate identical and shrink only the request count.
pub fn request_target(scale: &Scale) -> u64 {
    match scale.label {
        "paper" => 2_000_000,
        "tiny" => 8_000,
        _ => 40_000,
    }
}

/// One soaked scheme.
#[derive(Debug, Clone, Serialize)]
pub struct SoakPoint {
    /// Scheme label.
    pub scheme: String,
    /// Requests pulled from the open-loop source.
    pub arrived: usize,
    /// Requests completed by cut-off.
    pub completed: usize,
    /// Requests unfinished at cut-off.
    pub unfinished: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Wall-clock per arrival, microseconds (simulator speed).
    pub wall_us_per_req: f64,
    /// Completions per second of scheduling period (service throughput).
    pub throughput_rps: f64,
    /// End-to-end P99 latency, ms.
    pub p99_ms: f64,
    /// SLO-violation fraction (unfinished counted as violated).
    pub violation_rate: f64,
    /// Invariant-auditor violations (must be zero).
    pub invariant_violations: u64,
    /// High-water mark of live entries in the engine's request table.
    pub request_table_peak: usize,
    /// `request_table_peak / arrived` — the memory-contract ratio. On a
    /// healthy soak this shrinks as the target grows (the plateau).
    pub peak_fraction: f64,
}

/// Whether a point honors the bounded-memory contract: peak table
/// occupancy must stay well below total arrivals (in-flight plateau, not
/// O(total)). The in-flight plateau is ≈800 entries regardless of target
/// (rate × residence time), so the 20% bound is comfortable at the tiny
/// smoke target and three orders of magnitude above the plateau at soak
/// scale (<0.1%).
pub fn memory_bounded(p: &SoakPoint) -> bool {
    p.request_table_peak * 5 <= p.arrived
}

/// CI perf budget: v-MLP's wall-µs per request may cost at most this
/// multiple of FullProfile's on the same soak. FullProfile shares the
/// engine, event loop, and placement scan but none of v-MLP's reorder /
/// healing machinery, so the ratio isolates the scheme's own overhead
/// from the simulator's — and stays meaningful on noisy shared CI
/// runners where absolute µs/req thresholds would flake. The incremental
/// reorder index + placement cursor hold the observed ratio near 2×;
/// 4× is the regression alarm, not the aspiration.
pub const VMLP_BUDGET_MULTIPLE: f64 = 4.0;

/// Whether v-MLP's per-request wall cost is within
/// [`VMLP_BUDGET_MULTIPLE`] of FullProfile's. `None` when either scheme
/// is missing from the points.
pub fn vmlp_within_budget(points: &[SoakPoint]) -> Option<bool> {
    let us_per_req =
        |label: &str| points.iter().find(|p| p.scheme == label).map(|p| p.wall_us_per_req);
    let vmlp = us_per_req("v-MLP")?;
    let full = us_per_req("FullProfile")?;
    Some(vmlp <= full * VMLP_BUDGET_MULTIPLE)
}

/// Per-service profile-history window for soak runs. Unbounded history
/// (the figure-run default) grows with every completed span and makes
/// v-MLP's banded Δt estimation quadratic in run length; 512 recent cases
/// keep the estimates stable while bounding both memory and per-admission
/// cost.
pub const PROFILE_RETENTION: usize = 512;

/// The experiment config for one soaked scheme: constant offered rate so
/// expected arrivals are `max_rate × horizon`, a 10% horizon slack so the
/// request cap (not the horizon) ends the arrival stream, streaming
/// statistics, a bounded profile window, and the auditor sampling every
/// period.
pub fn config_for(scheme: impl Into<SchemeSpec>, requests: u64, seed: u64) -> ExperimentConfig {
    let max_rate = RATE_PER_MACHINE * MACHINES as f64;
    let horizon_s = requests as f64 / max_rate * 1.1;
    ExperimentConfig {
        machines: MACHINES,
        max_rate,
        horizon_s,
        ..ExperimentConfig::paper_default(scheme)
    }
    .with_pattern(WorkloadPattern::Constant)
    .with_seed(seed)
    .with_shards(SHARDS, ShardPolicy::RoundRobin)
    .with_auditor(true)
    .with_stream_stats(true)
    .with_profile_retention(PROFILE_RETENTION)
    .with_max_requests(requests)
}

/// Soaks one scheme, timing the whole experiment.
pub fn data_point(scheme: impl Into<SchemeSpec>, requests: u64, seed: u64) -> SoakPoint {
    let cfg = config_for(scheme, requests, seed);
    let label = cfg.scheme.display_name();
    let start = Instant::now();
    let r = Experiment::from_config(cfg).run().expect("soak config is valid");
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    SoakPoint {
        scheme: label,
        arrived: r.arrived,
        completed: r.completed,
        unfinished: r.unfinished,
        wall_ms,
        wall_us_per_req: wall_ms / r.arrived.max(1) as f64 * 1000.0,
        throughput_rps: r.throughput(),
        p99_ms: r.latency_ms[2],
        violation_rate: r.violation_rate,
        invariant_violations: r.invariant_violations,
        request_table_peak: r.request_table_peak,
        peak_fraction: r.request_table_peak as f64 / r.arrived.max(1) as f64,
    }
}

/// Soaks every swept scheme at a scale.
///
/// Honors the process-wide [`mlp_engine::shutdown`] flag between (and
/// during) sweep points: on ctrl-c the in-progress simulation drains at
/// its next sampling tick, its truncated point is discarded, and the
/// completed points are returned so the caller can still flush a partial
/// `BENCH_sim.json`.
pub fn data_sweep(scale: &Scale, seed: u64, sweep: &SweepConfig) -> Vec<SoakPoint> {
    let requests = request_target(scale);
    let mut points = Vec::with_capacity(sweep.schemes.len());
    for scheme in &sweep.schemes {
        if mlp_engine::shutdown::requested() {
            break;
        }
        eprintln!("fig_soak: {} × {requests} requests…", scheme.display_name());
        let point = data_point(scheme.clone(), requests, seed);
        if mlp_engine::shutdown::requested() {
            // The flag rose while this point ran: the kernel cut it short
            // at a tick boundary, so its numbers describe a truncated run.
            eprintln!("fig_soak: {} interrupted — discarding its partial point", point.scheme);
            break;
        }
        points.push(point);
    }
    points
}

/// [`data_sweep`] over the default soak sweep.
pub fn data(scale: &Scale, seed: u64) -> Vec<SoakPoint> {
    data_sweep(scale, seed, &default_sweep())
}

/// Renders the soak table.
pub fn report(points: &[SoakPoint], scale: &Scale) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scheme.clone(),
                format!("{}", p.arrived),
                format!("{}", p.completed),
                format!("{:.0}", p.wall_ms),
                format!("{:.1}", p.wall_us_per_req),
                format!("{:.0}", p.throughput_rps),
                format!("{:.1}", p.p99_ms),
                format!("{:.1}%", p.violation_rate * 100.0),
                format!("{}", p.request_table_peak),
                format!("{:.2}%", p.peak_fraction * 100.0),
                format!("{}", p.invariant_violations),
            ]
        })
        .collect();
    report::table(
        &format!(
            "Soak — open-loop streaming on {MACHINES} machines / {SHARDS} shards at \
             {RATE_PER_MACHINE} req/s/machine, auditor on ({})",
            scale.label
        ),
        &[
            "scheme",
            "arrived",
            "completed",
            "wall ms",
            "µs/req",
            "thr r/s",
            "p99 ms",
            "viol",
            "table peak",
            "peak/arr",
            "audit viol",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_targets_scale_down_for_ci() {
        assert_eq!(request_target(&Scale::paper()), 2_000_000);
        assert!(request_target(&Scale::small()) < request_target(&Scale::paper()));
        assert!(request_target(&Scale::tiny()) < request_target(&Scale::small()));
    }

    /// A miniature soak has the acceptance shape of the full run: the cap
    /// binds (not the horizon), the auditor is clean, and the request
    /// table plateaus far below total arrivals.
    #[test]
    fn mini_soak_is_clean_and_memory_bounded() {
        let p = data_point(Scheme::VMlp, 3_000, 7);
        assert!(p.arrived >= 3_000, "request cap never bound: {} arrivals", p.arrived);
        assert_eq!(p.invariant_violations, 0, "auditor must stay clean");
        assert!(p.completed > 0);
        assert!(
            memory_bounded(&p),
            "table peak {} is not ≪ {} arrivals",
            p.request_table_peak,
            p.arrived
        );
        assert!(p.p99_ms > 0.0);
    }
}
