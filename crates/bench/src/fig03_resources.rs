//! Fig 3 — microservices and resource provisioning.
//!
//! * **(a)** exec/suspend resource-demand ratios of twelve SocialNetwork
//!   services: each service stresses few resource kinds; memory is never
//!   the bottleneck.
//! * **(b)** container utilization over an eight-day Alibaba-style trace:
//!   significant fluctuation, frequent surges.
//! * **(c)** execution-time CDFs under resource capping for the three
//!   sensitivity classes: capping moves the mean (moderately variable),
//!   the mean *and* the variance (highly variable), or neither (less
//!   variable).

use mlp_engine::report;
use mlp_model::benchmarks::sn_fig3a_services;
use mlp_model::{RequestCatalog, ResourceSensitivity};
use mlp_sim::SimRng;
use mlp_stats::Summary;
use mlp_workload::AlibabaTraceConfig;

/// Fig 3a rows: per-service exec/suspend demand ratios.
pub fn fig3a_report() -> String {
    let catalog = RequestCatalog::paper();
    let mut rows = Vec::new();
    for sid in sn_fig3a_services() {
        let svc = catalog.services.get(sid);
        let r = svc.demand_ratio();
        rows.push(vec![
            svc.name.clone(),
            report::f(r.cpu),
            report::f(r.mem),
            report::f(r.io),
            format!("{:?}", svc.intensity),
        ]);
    }
    report::table(
        "Fig 3a — exec/suspend resource-demand ratio of 12 SocialNetwork services",
        &["service", "cpu", "mem", "io", "intensity"],
        &rows,
    )
}

/// Fig 3b: the synthetic Alibaba-style container-utilization trace.
pub fn fig3b_report(seed: u64) -> String {
    let trace = AlibabaTraceConfig::default().generate(&mut SimRng::new(seed));
    let surges = trace.smoothed(3).peaks_above(trace.mean() + 0.2).len();
    let mut out = report::series(
        "Fig 3b — container utilization, 8-day Alibaba-style trace (fraction of capacity)",
        trace.step(),
        // Downsample to hourly for a readable sparkline.
        &trace
            .values()
            .chunks(12)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect::<Vec<_>>(),
    );
    out.push_str(&format!(
        "surge peaks > mean+0.2: {surges} over 8 days ({:.1}/day)\n",
        surges as f64 / 8.0
    ));
    out
}

/// Fig 3c data: execution-time summaries per sensitivity archetype and
/// resource-satisfaction level.
pub fn fig3c_data(seed: u64) -> Vec<(ResourceSensitivity, f64, Summary)> {
    let catalog = RequestCatalog::paper();
    let mut rng = SimRng::new(seed);
    // Archetypes: a highly-sensitive, a moderately-sensitive service from
    // the catalog, and a hypothetical less-variable one (the paper notes
    // this class is uncommon).
    let mut picks = Vec::new();
    for sens in [ResourceSensitivity::High, ResourceSensitivity::Moderate] {
        let svc = catalog
            .services
            .services()
            .iter()
            .find(|s| s.sensitivity == sens)
            .expect("catalog covers both common sensitivity classes")
            .clone();
        picks.push((sens, svc));
    }
    let mut less = picks[1].1.clone();
    less.sensitivity = ResourceSensitivity::Less;
    picks.push((ResourceSensitivity::Less, less));

    let mut out = Vec::new();
    for (sens, svc) in picks {
        for cap in [1.0, 0.75, 0.5] {
            let mut s = Summary::new();
            for _ in 0..400 {
                s.record(svc.sample_exec_ms_capped(1.0, cap, rng.rng()));
            }
            out.push((sens, cap, s));
        }
    }
    out
}

/// Fig 3c report.
pub fn fig3c_report(seed: u64) -> String {
    let rows: Vec<Vec<String>> = fig3c_data(seed)
        .into_iter()
        .map(|(sens, cap, s)| {
            vec![
                format!("{sens:?}"),
                format!("{:.0}%", cap * 100.0),
                report::f(s.mean()),
                report::f(s.std_dev()),
                report::f(s.cv()),
            ]
        })
        .collect();
    report::table(
        "Fig 3c — execution time under resource capping, by sensitivity class (ms)",
        &["sensitivity", "budget", "mean", "stddev", "cv"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_for(sens: ResourceSensitivity, seed: u64) -> Vec<(f64, Summary)> {
        fig3c_data(seed)
            .into_iter()
            .filter(|(s, _, _)| *s == sens)
            .map(|(_, cap, s)| (cap, s))
            .collect()
    }

    #[test]
    fn highly_variable_mean_and_variance_grow() {
        let rows = stats_for(ResourceSensitivity::High, 7);
        let (full, half) = (&rows[0].1, &rows[2].1);
        assert!(half.mean() > 1.5 * full.mean(), "mean must inflate under capping");
        assert!(half.std_dev() > 1.5 * full.std_dev(), "variance must inflate too");
    }

    #[test]
    fn moderately_variable_mean_grows_variance_stays() {
        let rows = stats_for(ResourceSensitivity::Moderate, 7);
        let (full, half) = (&rows[0].1, &rows[2].1);
        assert!(half.mean() > 1.5 * full.mean());
        // cv (relative variance) unchanged: deterministic 1/f scaling.
        assert!((half.cv() - full.cv()).abs() < 0.03, "cv {} vs {}", half.cv(), full.cv());
    }

    #[test]
    fn less_variable_is_unaffected() {
        let rows = stats_for(ResourceSensitivity::Less, 7);
        let (full, half) = (&rows[0].1, &rows[2].1);
        assert!((half.mean() - full.mean()).abs() / full.mean() < 0.05);
    }

    #[test]
    fn fig3a_memory_never_bottleneck() {
        let r = fig3a_report();
        assert!(r.contains("compose-post-service"));
        // 12 service rows + 3 header lines.
        assert_eq!(r.lines().count(), 15);
    }

    #[test]
    fn fig3b_reports_surges() {
        let r = fig3b_report(3);
        assert!(r.contains("surge peaks"));
    }
}
