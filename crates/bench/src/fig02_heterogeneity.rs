//! Fig 2 — impact of application heterogeneity on execution time.
//!
//! The paper invokes six TrainTicket microservices 100× each under the two
//! TT request types (Advanced Ticketing ≈ getCheapest, Basic Search) with
//! abundant resources, and plots the CDF of execution time per service.
//! The headline observations: distributions vary *across services*, and
//! `order` nearly doubles in the worst case.

use mlp_engine::report;
use mlp_model::benchmarks::tt_fig2_services;
use mlp_model::{InnerVariability, RequestCatalog, ServiceId};
use mlp_sim::SimRng;
use mlp_stats::{Cdf, Summary};

/// Samples per (service, request type), matching the paper's 100 repeats.
pub const SAMPLES: usize = 100;

/// One row of the figure's data: a service's execution-time distribution
/// across both request types.
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Service name.
    pub name: String,
    /// Execution-time CDF (ms) pooled over both request types.
    pub cdf: Cdf,
    /// Relative spread `(max−min)/min` over the pooled samples — includes
    /// the cross-request work-factor effect, the full Fig 2 heterogeneity.
    pub spread: f64,
    /// Relative spread at nominal work factor only (the service's *inner*
    /// variability, net of request-type differences).
    pub inner_spread: f64,
    /// Variability class implied by the inner spread (Section II-A).
    pub observed_class: InnerVariability,
    /// The class declared in the catalog.
    pub declared_class: InnerVariability,
}

/// Work factors each request type induces on a TT service (1.0 when the
/// request does not stress it beyond nominal).
fn work_factor_for(rt_name: &str, svc: ServiceId, catalog: &RequestCatalog) -> f64 {
    let rt = catalog.request_by_name(rt_name).expect("TT request exists");
    rt.dag.nodes().iter().find(|n| n.service == svc).map(|n| n.work_factor).unwrap_or(1.0)
}

/// Generates the figure's data.
pub fn data(seed: u64) -> Vec<ServiceRow> {
    let catalog = RequestCatalog::paper();
    let mut rng = SimRng::new(seed);
    tt_fig2_services()
        .into_iter()
        .map(|sid| {
            let svc = catalog.services.get(sid);
            let mut cdf = Cdf::new();
            let mut sum = Summary::new();
            let mut inner = Summary::new();
            for rt_name in ["getCheapest", "basicSearch"] {
                let wf = work_factor_for(rt_name, sid, &catalog);
                for _ in 0..SAMPLES {
                    let ms = svc.sample_exec_ms(wf, rng.rng());
                    cdf.record(ms);
                    sum.record(ms);
                }
            }
            // Inner-variability classification uses the paper's sample
            // count (100 invocations) — the Section II-A spread thresholds
            // are calibrated to that order of repeats.
            for _ in 0..SAMPLES {
                inner.record(svc.sample_exec_ms(1.0, rng.rng()));
            }
            let spread = sum.relative_spread();
            let inner_spread = inner.relative_spread();
            ServiceRow {
                name: svc.name.clone(),
                cdf,
                spread,
                inner_spread,
                observed_class: InnerVariability::classify(inner_spread),
                declared_class: svc.inner,
            }
        })
        .collect()
}

/// Renders the report.
pub fn report(seed: u64) -> String {
    let mut rows = Vec::new();
    for mut r in data(seed) {
        rows.push(vec![
            r.name.clone(),
            report::f(r.cdf.quantile(0.1).unwrap_or(0.0)),
            report::f(r.cdf.quantile(0.5).unwrap_or(0.0)),
            report::f(r.cdf.quantile(0.9).unwrap_or(0.0)),
            report::f(r.cdf.quantile(1.0).unwrap_or(0.0)),
            format!("{:.0}%", r.spread * 100.0),
            format!("{:?}", r.observed_class),
        ]);
    }
    report::table(
        "Fig 2 — execution-time CDFs of six TrainTicket services (ms, pooled over both request types)",
        &["service", "p10", "p50", "p90", "max", "spread", "class"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_classes_match_declared() {
        // The paper's classification must be recoverable from the
        // synthetic samples — this is the calibration Fig 2 depends on.
        for row in data(2022) {
            assert_eq!(
                row.observed_class, row.declared_class,
                "{}: inner spread {:.2} observed {:?}, declared {:?}",
                row.name, row.inner_spread, row.observed_class, row.declared_class
            );
        }
    }

    #[test]
    fn order_shows_large_variation() {
        // "the execution time of order almost doubles in the worst case"
        let rows = data(2022);
        let order = rows.iter().find(|r| r.name == "ts-order-service").unwrap();
        assert!(order.spread > 0.45, "order spread {:.2}", order.spread);
    }

    #[test]
    fn advanced_request_shifts_the_distribution() {
        // getCheapest's work factors make the same service slower than
        // under basicSearch: the cross-request heterogeneity of Fig 2.
        let catalog = RequestCatalog::paper();
        let travel = catalog.services.by_name("ts-travel-service").unwrap().id;
        let wf_adv = work_factor_for("getCheapest", travel, &catalog);
        let wf_basic = work_factor_for("basicSearch", travel, &catalog);
        assert!(wf_adv > wf_basic);
    }

    #[test]
    fn report_renders_six_rows() {
        let r = report(1);
        assert!(r.contains("ts-order-service"));
        assert!(r.contains("ts-station-service"));
        assert_eq!(r.lines().count(), 3 + 6);
    }
}
