//! Fig 10 — effectiveness: normalized QoS-violation rate.
//!
//! Grid: 5 schemes × 3 volatility streams × 3 workload patterns; each
//! cell's violation rate is normalized to v-MLP's (so v-MLP = 1.0 and
//! values above 1 mean more violations than v-MLP).

use crate::evalrun::{run_cells, Cell};
use crate::scale::Scale;
use mlp_engine::config::MixSpec;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_model::VolatilityClass;
use mlp_workload::WorkloadPattern;

/// One normalized grid: `grid[pattern][class][scheme]` = violation rate
/// normalized to v-MLP (raw rates in `raw`).
#[derive(Debug, Clone)]
pub struct Fig10Data {
    /// Raw violation fractions per (pattern, class, scheme).
    pub raw: Vec<Vec<Vec<f64>>>,
    /// Normalized-to-v-MLP ratios, same shape.
    pub normalized: Vec<Vec<Vec<f64>>>,
}

/// Classes in figure order.
pub const CLASSES: [VolatilityClass; 3] =
    [VolatilityClass::Low, VolatilityClass::Mid, VolatilityClass::High];

/// Generates the grid. All 45 cells run in one parallel sweep.
pub fn data(scale: Scale, seed: u64) -> Fig10Data {
    let mut cells = Vec::new();
    for pattern in WorkloadPattern::PAPER {
        for class in CLASSES {
            for scheme in Scheme::PAPER {
                cells.push(Cell {
                    scheme: scheme.into(),
                    pattern,
                    mix: MixSpec::SingleClass(class),
                    rate_mult: 1.0,
                });
            }
        }
    }
    let results = run_cells(scale, &cells, seed);

    let mut raw = Vec::new();
    let mut normalized = Vec::new();
    let mut it = results.chunks(Scheme::PAPER.len());
    for _pattern in WorkloadPattern::PAPER {
        let mut raw_p = Vec::new();
        let mut norm_p = Vec::new();
        for _class in CLASSES {
            let chunk = it.next().expect("grid shape");
            let rates: Vec<f64> = chunk.iter().map(|r| r.violation).collect();
            let vmlp = rates[4].max(1e-4); // guard: v-MLP with zero violations
            raw_p.push(rates.clone());
            norm_p.push(rates.iter().map(|r| r / vmlp).collect());
        }
        raw.push(raw_p);
        normalized.push(norm_p);
    }
    Fig10Data { raw, normalized }
}

/// Renders the figure.
pub fn report(scale: Scale, seed: u64) -> String {
    let d = data(scale, seed);
    let mut out = String::new();
    for (pi, pattern) in WorkloadPattern::PAPER.iter().enumerate() {
        let rows: Vec<Vec<String>> = CLASSES
            .iter()
            .enumerate()
            .map(|(ci, class)| {
                let mut row = vec![format!("{class:?} V_r")];
                for (si, scheme) in Scheme::PAPER.iter().enumerate() {
                    let _ = scheme;
                    row.push(format!(
                        "{} ({:.1}%)",
                        report::f(d.normalized[pi][ci][si]),
                        d.raw[pi][ci][si] * 100.0
                    ));
                }
                row
            })
            .collect();
        out.push_str(&report::table(
            &format!(
                "Fig 10 — QoS-violation rate normalized to v-MLP, pattern {} (raw % in parens)",
                pattern.label()
            ),
            &["stream", "FairSched", "CurSched", "PartProfile", "FullProfile", "v-MLP"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::evalrun::{run_cells, Cell};

    /// Shape check at tiny scale on a single grid cell: FairSched violates
    /// at least as much as v-MLP on the high-volatility stream.
    #[test]
    fn simple_schedulers_violate_more_on_high_vr() {
        let cells = [
            Cell {
                scheme: Scheme::FairSched.into(),
                pattern: WorkloadPattern::L1Pulse,
                mix: MixSpec::SingleClass(VolatilityClass::High),
                rate_mult: 1.0,
            },
            Cell {
                scheme: Scheme::VMlp.into(),
                pattern: WorkloadPattern::L1Pulse,
                mix: MixSpec::SingleClass(VolatilityClass::High),
                rate_mult: 1.0,
            },
        ];
        let res = run_cells(Scale::tiny(), &cells, 5);
        assert!(
            res[0].violation >= res[1].violation,
            "FairSched {} vs v-MLP {}",
            res[0].violation,
            res[1].violation
        );
    }
}
