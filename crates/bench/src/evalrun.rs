//! Shared evaluation-run helper: run a (scheme, pattern, mix) cell over
//! several seeds in parallel and average the figure metrics.

use crate::loads::rate_factor;
use crate::scale::Scale;
use mlp_engine::config::{ExperimentConfig, MixSpec};
use mlp_engine::parallel::run_all;
use mlp_engine::registry::SchemeSpec;
use mlp_engine::runner::ExperimentResult;
use mlp_model::RequestCatalog;
use mlp_stats::TimeSeries;
use mlp_workload::WorkloadPattern;

/// Seed-averaged metrics for one experiment cell.
#[derive(Debug, Clone)]
pub struct AvgResult {
    /// Scheme display label (registry-derived, e.g. `v-MLP[healing=off]`).
    pub scheme: String,
    /// Mean SLO-violation fraction.
    pub violation: f64,
    /// Mean per-class violation fractions `[low, mid, high]`.
    pub violation_by_class: [f64; 3],
    /// Mean latency percentiles `[p50, p90, p99]` (ms).
    pub latency_ms: [f64; 3],
    /// Mean per-class p99 `[low, mid, high]` (ms).
    pub p99_by_class: [f64; 3],
    /// Mean cluster utilization.
    pub utilization: f64,
    /// Utilization time series from the first seed (for Fig 11 curves).
    pub util_series: TimeSeries,
    /// Mean throughput (completed requests/s within the horizon).
    pub throughput: f64,
    /// Mean goodput (SLO-compliant completions/s within the horizon).
    pub goodput: f64,
    /// Mean healing counters (delay-slot fills, stretches, switches).
    pub healing: (f64, f64, f64),
}

/// One experiment cell to run.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scheduling scheme spec (enum schemes convert via `Into`).
    pub scheme: SchemeSpec,
    /// Workload pattern.
    pub pattern: WorkloadPattern,
    /// Request mix.
    pub mix: MixSpec,
    /// Extra multiplier on the scale's rate (after work normalization).
    pub rate_mult: f64,
}

impl Cell {
    /// Default cell for a scheme: L1 pattern, balanced mix.
    pub fn new(scheme: impl Into<SchemeSpec>) -> Self {
        Cell {
            scheme: scheme.into(),
            pattern: WorkloadPattern::L1Pulse,
            mix: MixSpec::Balanced,
            rate_mult: 1.0,
        }
    }
}

/// Runs every cell × `scale.seeds` seeds in parallel and averages.
///
/// Per-class streams are work-normalized (see [`crate::loads`]) so every
/// mix offers the same CPU-work per second at `rate_mult = 1.0`.
pub fn run_cells(scale: Scale, cells: &[Cell], base_seed: u64) -> Vec<AvgResult> {
    let catalog = RequestCatalog::paper();
    let mut configs: Vec<ExperimentConfig> = Vec::with_capacity(cells.len() * scale.seeds as usize);
    for cell in cells {
        let rate = scale.max_rate * rate_factor(cell.mix, &catalog) * cell.rate_mult;
        for s in 0..scale.seeds {
            configs.push(
                scale
                    .config(cell.scheme.clone())
                    .with_pattern(cell.pattern)
                    .with_mix(cell.mix)
                    .with_rate(rate)
                    .with_seed(base_seed + s),
            );
        }
    }
    let results = run_all(&configs, 0);
    results
        .chunks(scale.seeds as usize)
        .zip(cells)
        .map(|(chunk, cell)| average(cell.scheme.display_name(), chunk))
        .collect()
}

fn average(scheme: String, runs: &[ExperimentResult]) -> AvgResult {
    let n = runs.len() as f64;
    let mut out = AvgResult {
        scheme,
        violation: 0.0,
        violation_by_class: [0.0; 3],
        latency_ms: [0.0; 3],
        p99_by_class: [0.0; 3],
        utilization: 0.0,
        util_series: runs[0].utilization.clone(),
        throughput: 0.0,
        goodput: 0.0,
        healing: (0.0, 0.0, 0.0),
    };
    for r in runs {
        out.violation += r.violation_rate / n;
        out.utilization += r.mean_utilization / n;
        out.throughput += r.throughput() / n;
        out.goodput += r.goodput() / n;
        for i in 0..3 {
            out.violation_by_class[i] += r.violation_by_class[i] / n;
            out.latency_ms[i] += r.latency_ms[i] / n;
            out.p99_by_class[i] += r.p99_by_class[i] / n;
        }
        out.healing.0 += r.healing.0 as f64 / n;
        out.healing.1 += r.healing.1 as f64 / n;
        out.healing.2 += r.healing.2 as f64 / n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_engine::scheme::Scheme;

    #[test]
    fn runs_and_averages_two_schemes() {
        let scale = Scale::tiny();
        let cells = [Cell::new(Scheme::FairSched), Cell::new(Scheme::VMlp)];
        let res = run_cells(scale, &cells, 77);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].scheme, "FairSched");
        assert_eq!(res[1].scheme, "v-MLP");
        for r in &res {
            assert!(r.throughput > 0.0);
            assert!(r.latency_ms[0] <= r.latency_ms[2]);
        }
    }
}
