//! Fig 4 — highly uncertain communication overheads.
//!
//! The paper records caller→callee communication times for 10 callee
//! microservices × 100 requests, once with everything on a single machine
//! (docker-compose) and once across machines (docker swarm). Findings:
//! single-machine times are lower and tighter; cross-machine times are
//! higher, wider, and occasionally spike (congestion / rerouting).

use mlp_engine::report;
use mlp_model::RequestCatalog;
use mlp_net::{fig4_samples, NetworkModel};
use mlp_sim::SimRng;
use mlp_stats::Summary;

/// Requests per callee, matching the paper.
pub const REQUESTS: usize = 100;

/// One measured cell: a callee service's comm-time distribution at one
/// locality.
#[derive(Debug, Clone)]
pub struct CommCell {
    /// Callee service name.
    pub callee: String,
    /// Whether caller and callee share a machine.
    pub same_machine: bool,
    /// Comm-time summary (ms).
    pub stats: Summary,
    /// Spikes above 3× the mean (the paper's "green blocks").
    pub spikes: usize,
}

/// Generates both panels' data: 10 callees × {single, cross} machine.
pub fn data(seed: u64) -> Vec<CommCell> {
    let catalog = RequestCatalog::paper();
    let net = NetworkModel::paper_default();
    let mut rng = SimRng::new(seed);
    let callees: Vec<_> = catalog.services.services().iter().take(10).cloned().collect();
    let mut out = Vec::new();
    for same in [true, false] {
        for svc in &callees {
            let samples = fig4_samples(&net, same, svc.comm, REQUESTS, &mut rng);
            let stats = Summary::from_slice(&samples);
            let spikes = samples.iter().filter(|&&s| s > stats.mean() * 3.0).count();
            out.push(CommCell { callee: svc.name.clone(), same_machine: same, stats, spikes });
        }
    }
    out
}

/// Renders both panels.
pub fn report(seed: u64) -> String {
    let cells = data(seed);
    let mut out = String::new();
    for same in [true, false] {
        let rows: Vec<Vec<String>> = cells
            .iter()
            .filter(|c| c.same_machine == same)
            .map(|c| {
                vec![
                    c.callee.clone(),
                    report::f(c.stats.mean()),
                    report::f(c.stats.std_dev()),
                    report::f(c.stats.max()),
                    c.spikes.to_string(),
                ]
            })
            .collect();
        let title = if same {
            "Fig 4a — communication time, single machine (ms, 100 requests/callee)"
        } else {
            "Fig 4b — communication time, across machines (ms, 100 requests/callee)"
        };
        out.push_str(&report::table(
            title,
            &["callee", "mean", "stddev", "max", "spikes>3x"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pooled(cells: &[CommCell], same: bool) -> Summary {
        let mut s = Summary::new();
        for c in cells.iter().filter(|c| c.same_machine == same) {
            s.merge(&c.stats);
        }
        s
    }

    #[test]
    fn single_machine_is_faster_and_tighter() {
        let cells = data(11);
        let local = pooled(&cells, true);
        let remote = pooled(&cells, false);
        assert!(
            local.mean() < remote.mean() / 2.0,
            "local {} vs remote {}",
            local.mean(),
            remote.mean()
        );
        assert!(local.variance() < remote.variance());
    }

    #[test]
    fn cross_machine_has_congestion_spikes() {
        let cells = data(11);
        let remote_spikes: usize = cells.iter().filter(|c| !c.same_machine).map(|c| c.spikes).sum();
        let local_spikes: usize = cells.iter().filter(|c| c.same_machine).map(|c| c.spikes).sum();
        assert!(remote_spikes > local_spikes, "{remote_spikes} vs {local_spikes}");
        assert!(remote_spikes >= 10, "expected visible green blocks, got {remote_spikes}");
    }

    #[test]
    fn ten_callees_both_panels() {
        let cells = data(1);
        assert_eq!(cells.len(), 20);
        let r = report(1);
        assert!(r.contains("Fig 4a"));
        assert!(r.contains("Fig 4b"));
    }
}
