//! Live-serving soak: the wall-clock kernel behind a real loopback TCP
//! socket, driven by the open-loop load generator, with the invariant
//! auditor on the whole time.
//!
//! Where `fig_soak` proves the *virtual-time* kernel holds its invariants
//! over millions of simulated requests, this figure proves the same kernel
//! holds them when the clock is real: the exact event-application code
//! serves live traffic through `mlp-serve`, and the auditor — which knows
//! nothing about modes — must stay silent while latencies, admission
//! rounds, and healing all unfold in wall time. The published point is
//! sustained throughput plus the client-observed latency distribution,
//! which at an unsaturated operating point should reproduce the
//! simulator's own tail (the service times are the same model, only the
//! clock changed).

use crate::scale::Scale;
use mlp_engine::config::ExperimentConfig;
use mlp_engine::scheme::Scheme;
use mlp_serve::loadgen::{self, LoadgenConfig};
use mlp_serve::{ServeConfig, Server};
use mlp_trace::metrics::names;
use mlp_workload::{RateSchedule, WorkloadPattern};
use serde::Serialize;
use std::time::Duration;

/// How big the live soak runs at each named scale.
///
/// Unlike the simulation figures, the offered rate here must sit *inside*
/// the fleet's capacity: the point is zero-violation serving at a
/// sustained rate, not overload behavior (that's `fig_overload`). The
/// paper row doubles the Section V fleet because a *sustained* 1000 req/s
/// is the L-patterns' short-lived peak made permanent — 100 machines
/// saturate there, 200 hold p99 at the unloaded ~400 ms.
#[derive(Debug, Clone, Copy)]
pub struct ServeScale {
    pub machines: usize,
    pub offered_rps: f64,
    pub duration_s: f64,
    pub connections: usize,
    pub net_workers: usize,
    pub label: &'static str,
}

impl ServeScale {
    pub fn from_scale(scale: &Scale) -> ServeScale {
        match scale.label {
            "paper" => ServeScale {
                machines: 200,
                offered_rps: 1100.0,
                duration_s: 60.0,
                connections: 900,
                net_workers: 1000,
                label: "paper",
            },
            "tiny" => ServeScale {
                machines: 24,
                offered_rps: 80.0,
                duration_s: 6.0,
                connections: 64,
                net_workers: 80,
                label: "tiny",
            },
            _ => ServeScale {
                machines: 48,
                offered_rps: 200.0,
                duration_s: 12.0,
                connections: 160,
                net_workers: 192,
                label: "small",
            },
        }
    }
}

/// One published live-soak data point.
#[derive(Debug, Clone, Serialize)]
pub struct ServePoint {
    pub scale: String,
    pub machines: usize,
    pub offered_rps: f64,
    pub duration_s: f64,
    pub connections: usize,
    /// Requests the generator actually put on the wire.
    pub sent: u64,
    pub completed: u64,
    pub shed: u64,
    pub busy: u64,
    pub errors: u64,
    /// Arrival instants that slipped >10 ms (closed-loop distortion).
    pub late_arrivals: u64,
    /// Completions per wall-clock second, including the drain tail.
    pub sustained_rps: f64,
    pub mean_latency_us: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    /// Requests the kernel admitted (its own arrival count).
    pub kernel_arrived: usize,
    /// 0 on a clean run; the auditor's count otherwise.
    pub invariant_violations: u64,
    /// In-flight requests cut off by the shutdown drain (0 = clean).
    pub dropped_at_drain: u64,
}

/// Runs the live soak: in-process server on a loopback port, in-process
/// load generator, graceful drain, auditor verdict.
pub fn run(scale: &Scale, seed: u64) -> ServePoint {
    let s = ServeScale::from_scale(scale);
    let experiment =
        ExperimentConfig { machines: s.machines, ..ExperimentConfig::paper_default(Scheme::VMlp) }
            .with_seed(seed)
            .with_stream_stats(true)
            .with_profile_retention(512)
            .with_auditor(true);

    let serve_cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: s.net_workers,
        queue_cap: 4096,
        request_timeout: Duration::from_secs(60),
        drain_timeout: Duration::from_secs(30),
        experiment,
    };
    let server = Server::start(serve_cfg).expect("bind loopback");

    let report = loadgen::run(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        schedule: RateSchedule::steady(WorkloadPattern::Constant, s.offered_rps)
            .expect("constant schedule is valid"),
        duration: Duration::from_secs_f64(s.duration_s),
        connections: s.connections,
        seed: seed.wrapping_add(1),
        timeout: Duration::from_secs(60),
    });

    let out = server.stop();
    let violations = match &out.invariant_report {
        None => 0,
        Some(_) => out.metrics.counter(names::INVARIANT_VIOLATIONS).max(1),
    };
    if let Some(rep) = &out.invariant_report {
        eprintln!("fig_serve[{}]: auditor report:\n{rep}", s.label);
    }

    ServePoint {
        scale: s.label.to_string(),
        machines: s.machines,
        offered_rps: s.offered_rps,
        duration_s: s.duration_s,
        connections: s.connections,
        sent: report.sent,
        completed: report.completed,
        shed: report.shed,
        busy: report.busy,
        errors: report.errors + report.timeouts,
        late_arrivals: report.late_arrivals,
        sustained_rps: report.achieved_rps(),
        mean_latency_us: report.mean_latency_us(),
        p50_us: report.percentile_us(50.0),
        p95_us: report.percentile_us(95.0),
        p99_us: report.percentile_us(99.0),
        kernel_arrived: out.arrived,
        invariant_violations: violations,
        dropped_at_drain: report.dropped,
    }
}

/// The human-readable table for the bin's stdout.
pub fn report(p: &ServePoint) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fig_serve — live wall-clock soak ({} scale)\n\
         {} machines, {:.0} req/s offered for {:.0}s over {} connections\n\n",
        p.scale, p.machines, p.offered_rps, p.duration_s, p.connections
    ));
    out.push_str(&format!(
        "  sent / completed:    {} / {}\n\
         \x20 sustained:           {:.1} req/s\n\
         \x20 latency p50/p95/p99: {:.1} / {:.1} / {:.1} ms (mean {:.1})\n\
         \x20 shed / busy / errors: {} / {} / {}\n\
         \x20 late arrivals:       {}\n\
         \x20 dropped at drain:    {}\n\
         \x20 invariant violations: {}\n",
        p.sent,
        p.completed,
        p.sustained_rps,
        p.p50_us as f64 / 1000.0,
        p.p95_us as f64 / 1000.0,
        p.p99_us as f64 / 1000.0,
        p.mean_latency_us / 1000.0,
        p.shed,
        p.busy,
        p.errors,
        p.late_arrivals,
        p.dropped_at_drain,
        p.invariant_violations,
    ));
    out
}

/// The pass/fail gates CI hangs off this figure.
pub fn gates(p: &ServePoint) -> Vec<String> {
    let mut failures = Vec::new();
    if p.invariant_violations > 0 {
        failures
            .push(format!("{} invariant violations during the live soak", p.invariant_violations));
    }
    if p.dropped_at_drain > 0 {
        failures.push(format!(
            "{} requests dropped at drain (not a clean shutdown)",
            p.dropped_at_drain
        ));
    }
    if p.errors > 0 {
        failures.push(format!("{} transport errors / timeouts", p.errors));
    }
    // The offered process must actually have been served: completions
    // within 10% of what was sent, and what was sent within 10% of the
    // expectation for the schedule (Poisson noise at tiny scale runs
    // wider, hence the generous band).
    let expected = p.offered_rps * p.duration_s;
    if (p.sent as f64) < 0.8 * expected {
        failures.push(format!("only {} of ~{expected:.0} expected requests were offered", p.sent));
    }
    if (p.completed as f64) < 0.9 * p.sent as f64 {
        failures.push(format!("only {}/{} offered requests completed", p.completed, p.sent));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_scales_stay_inside_capacity() {
        for scale in [Scale::tiny(), Scale::small(), Scale::paper()] {
            let s = ServeScale::from_scale(&scale);
            // Verified in sim: at ≤5.5 req/s/machine the const-pattern
            // fleet holds its unloaded ~400 ms p99 (26% utilization at the
            // paper point). Every serve point must stay in that regime —
            // the fig_serve story is "live reproduces sim at an
            // unsaturated operating point", not a stress test.
            let per_machine = s.offered_rps / s.machines as f64;
            assert!(per_machine < 6.0, "{}: {per_machine:.1} req/s/machine", s.label);
            // Open-loop honesty: a connection's mean gap must exceed the
            // ~400 ms unloaded p99 so blocking rarely delays an arrival.
            let gap_s = s.connections as f64 / s.offered_rps;
            assert!(gap_s > 0.4, "{}: mean per-connection gap {gap_s:.2}s", s.label);
            assert!(s.net_workers > s.connections / 2);
        }
    }

    /// The tiny point end to end — a real socket, ~500 requests, auditor
    /// on. This is the CI serve-smoke in miniature.
    #[test]
    fn tiny_soak_passes_its_own_gates() {
        let p = run(&Scale::tiny(), 2022);
        let failures = gates(&p);
        assert!(failures.is_empty(), "gates failed: {failures:?}\n{p:?}");
        assert!(p.completed > 200, "tiny soak should complete a few hundred: {p:?}");
    }
}
