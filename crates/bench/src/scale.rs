//! Experiment scales: paper-faithful, laptop, and smoke-test sizes.

use mlp_engine::config::ExperimentConfig;
use mlp_engine::registry::SchemeSpec;

/// How big to run the evaluation. The scheduler dynamics are driven by
/// per-machine load, so scaling machines and peak rate together preserves
/// the regime while cutting wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Cluster size.
    pub machines: usize,
    /// Peak arrival rate, req/s.
    pub max_rate: f64,
    /// Horizon, seconds.
    pub horizon_s: f64,
    /// Independent seeds averaged per data point.
    pub seeds: u64,
    /// Human label for report headers.
    pub label: &'static str,
}

impl Scale {
    /// The paper's Section V parameters: 100 machines, 1000 req/s peak,
    /// 100 s scheduling period.
    pub fn paper() -> Scale {
        Scale { machines: 100, max_rate: 1000.0, horizon_s: 100.0, seeds: 1, label: "paper" }
    }

    /// Laptop scale (default for binaries): the paper's per-machine
    /// regime at roughly an eighth of the size.
    pub fn small() -> Scale {
        Scale { machines: 12, max_rate: 84.0, horizon_s: 60.0, seeds: 2, label: "small" }
    }

    /// Smoke-test scale for CI/integration tests.
    pub fn tiny() -> Scale {
        Scale { machines: 8, max_rate: 40.0, horizon_s: 8.0, seeds: 1, label: "tiny" }
    }

    /// Builds the base experiment config for a scheme at this scale.
    pub fn config(&self, scheme: impl Into<SchemeSpec>) -> ExperimentConfig {
        ExperimentConfig {
            machines: self.machines,
            max_rate: self.max_rate,
            horizon_s: self.horizon_s,
            ..ExperimentConfig::paper_default(scheme)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_engine::scheme::Scheme;

    #[test]
    fn scales_preserve_per_machine_regime() {
        let p = Scale::paper();
        let s = Scale::small();
        let per_machine_paper = p.max_rate / p.machines as f64;
        let per_machine_small = s.max_rate / s.machines as f64;
        assert!((per_machine_paper - per_machine_small).abs() / per_machine_paper < 0.35);
    }

    #[test]
    fn config_carries_scale() {
        let c = Scale::tiny().config(Scheme::VMlp);
        assert_eq!(c.machines, 8);
        assert_eq!(c.max_rate, 40.0);
    }
}
