//! Scale trajectory — wall-clock of one v-MLP run as the fleet grows.
//!
//! The paper evaluates an 8-machine cluster; the ROADMAP north-star is
//! thousands of machines. This sweep holds the *per-machine* offered load
//! constant (the small-scale regime) while the fleet grows 8 → 4096, with
//! the cluster partitioned into one shard per 16 machines so placement and
//! healing scan a shard instead of the whole fleet, crossed with a
//! worker-thread axis (shard ticks fan out over the pool; results are
//! bit-identical across the axis, only wall time moves). The invariant
//! auditor runs at every point: scaling out must never cost correctness.

use crate::scale::Scale;
use mlp_cluster::ShardPolicy;
use mlp_engine::config::ExperimentConfig;
use mlp_engine::experiment::Experiment;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_trace::metrics::names;
use serde::Serialize;
use std::time::Instant;

/// Per-machine offered load at every sweep point, req/s — the small-scale
/// regime (84 req/s across 12 machines) held constant while the fleet
/// grows, so bigger points measure scheduler cost, not a different regime.
pub const RATE_PER_MACHINE: f64 = 7.0;

/// Horizon per point, seconds. Short: wall time is dominated by the big
/// points, and the trajectory needs their slope, not long-run statistics.
pub const HORIZON_S: f64 = 8.0;

/// One shard per this many machines (minimum one shard).
pub const MACHINES_PER_SHARD: usize = 16;

/// Fleet sizes swept at a given scale. Paper scale runs the full
/// trajectory; small trims the 1024- and 4096-machine points
/// (CI-friendly); tiny keeps just the smallest two for smoke tests.
pub fn machine_counts(scale: &Scale) -> &'static [usize] {
    match scale.label {
        "paper" => &[8, 64, 256, 1024, 4096],
        "tiny" => &[8, 64],
        _ => &[8, 64, 256],
    }
}

/// Worker-thread counts swept at each fleet size — the threads axis of
/// the trajectory. Results are bit-identical across the axis (the pool
/// only changes wall time); sweeping it records what the hardware
/// actually delivers. Small scale keeps one multi-worker point so CI
/// exercises the threaded path; tiny stays inline.
pub fn worker_counts(scale: &Scale) -> &'static [usize] {
    match scale.label {
        "paper" => &[1, 4, 8],
        "tiny" => &[1],
        _ => &[1, 2],
    }
}

/// Shard count for a fleet: one shard per [`MACHINES_PER_SHARD`] machines.
pub fn shards_for(machines: usize) -> usize {
    (machines / MACHINES_PER_SHARD).max(1)
}

/// One row of the trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Fleet size.
    pub machines: usize,
    /// Shards the fleet was partitioned into.
    pub shards: usize,
    /// Worker threads ticking the shards (1 = inline).
    pub workers: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Requests that arrived / completed.
    pub arrived: usize,
    /// Requests completed by cut-off.
    pub completed: usize,
    /// SLO-violation fraction.
    pub violation_rate: f64,
    /// Mean cluster utilization.
    pub mean_utilization: f64,
    /// Placements that spilled out of their home shard.
    pub shard_overflows: u64,
    /// Invariant-auditor violations (must be zero).
    pub invariant_violations: u64,
    /// Peak sampled utilization per shard (empty when the fleet runs as a
    /// single shard — the per-shard gauges are only published for K > 1).
    pub shard_peak_utilization: Vec<f64>,
}

/// The experiment config for one sweep point.
pub fn config_for(machines: usize, workers: usize, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        machines,
        max_rate: RATE_PER_MACHINE * machines as f64,
        horizon_s: HORIZON_S,
        ..ExperimentConfig::paper_default(Scheme::VMlp)
    }
    .with_seed(seed)
    .with_shards(shards_for(machines), ShardPolicy::RoundRobin)
    .with_workers(workers)
    .with_auditor(true)
}

/// Runs one sweep point, timing the whole experiment (profiling, stream
/// generation, simulation, summarization — the unit a capacity planner
/// would actually re-run).
pub fn data_point(machines: usize, workers: usize, seed: u64) -> ScalePoint {
    let shards = shards_for(machines);
    let start = Instant::now();
    let (r, out) = Experiment::from_config(config_for(machines, workers, seed))
        .run_full()
        .expect("scale sweep config is valid");
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let shard_peak_utilization = if shards > 1 {
        (0..shards as u32)
            .map(|s| out.metrics.gauge(&names::shard_utilization_peak(s)).unwrap_or(0.0))
            .collect()
    } else {
        Vec::new()
    };
    ScalePoint {
        machines,
        shards,
        workers,
        wall_ms,
        arrived: r.arrived,
        completed: r.completed,
        violation_rate: r.violation_rate,
        mean_utilization: r.mean_utilization,
        shard_overflows: r.shard_overflows,
        invariant_violations: r.invariant_violations,
        shard_peak_utilization,
    }
}

/// Runs the whole trajectory for a scale.
pub fn data(scale: &Scale, seed: u64) -> Vec<ScalePoint> {
    machine_counts(scale)
        .iter()
        .flat_map(|&machines| worker_counts(scale).iter().map(move |&workers| (machines, workers)))
        .map(|(machines, workers)| {
            eprintln!(
                "fig_scale: {machines} machines ({} shards, {workers} workers)…",
                shards_for(machines)
            );
            data_point(machines, workers, seed)
        })
        .collect()
}

/// Renders the trajectory table.
pub fn report(points: &[ScalePoint], scale: &Scale) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.machines),
                format!("{}", p.shards),
                format!("{}", p.workers),
                format!("{:.0}", p.wall_ms),
                format!("{:.1}", p.wall_ms / p.completed.max(1) as f64 * 1000.0),
                format!("{}", p.completed),
                format!("{:.1}%", p.violation_rate * 100.0),
                format!("{:.1}%", p.mean_utilization * 100.0),
                format!("{}", p.shard_overflows),
                format!("{}", p.invariant_violations),
            ]
        })
        .collect();
    report::table(
        &format!(
            "Scale trajectory — v-MLP wall-clock at {RATE_PER_MACHINE} req/s/machine, \
             1 shard per {MACHINES_PER_SHARD} machines, auditor on ({})",
            scale.label
        ),
        &[
            "machines",
            "shards",
            "workers",
            "wall ms",
            "µs/req",
            "completed",
            "violations",
            "util",
            "overflows",
            "audit viol",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_sizing_is_one_per_sixteen_machines() {
        assert_eq!(shards_for(8), 1);
        assert_eq!(shards_for(16), 1);
        assert_eq!(shards_for(64), 4);
        assert_eq!(shards_for(256), 16);
        assert_eq!(shards_for(1024), 64);
        assert_eq!(shards_for(4096), 256);
    }

    #[test]
    fn tiny_scale_trims_the_trajectory() {
        assert_eq!(machine_counts(&Scale::tiny()), &[8, 64]);
        assert_eq!(machine_counts(&Scale::small()), &[8, 64, 256]);
        assert_eq!(machine_counts(&Scale::paper()), &[8, 64, 256, 1024, 4096]);
        assert_eq!(worker_counts(&Scale::tiny()), &[1]);
        assert_eq!(worker_counts(&Scale::small()), &[1, 2]);
        assert_eq!(worker_counts(&Scale::paper()), &[1, 4, 8]);
    }

    /// A sharded point runs clean end to end and publishes per-shard
    /// metrics — the acceptance shape of the full sweep, at test size.
    #[test]
    fn sharded_point_is_clean_and_reports_per_shard_metrics() {
        let p = data_point(32, 2, 7);
        assert_eq!(p.shards, 2);
        assert_eq!(p.workers, 2);
        assert_eq!(p.invariant_violations, 0, "auditor must stay clean");
        assert!(p.completed > 0);
        assert!(p.wall_ms > 0.0);
        assert_eq!(p.shard_peak_utilization.len(), 2, "per-shard gauges must be published");
        for (i, u) in p.shard_peak_utilization.iter().enumerate() {
            assert!((0.0..=1.0).contains(u), "shard {i} peak utilization {u} out of range");
            assert!(*u > 0.0, "shard {i} never saw load — peak gauge missing");
        }
    }
}
