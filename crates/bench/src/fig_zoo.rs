//! Scheduler-zoo sweep — every registered contender head-to-head.
//!
//! Races a sweep of scheme specs (default: the paper's five schemes, the
//! healing-off v-MLP ablation, and the search-based `SearchSched`
//! contender; committed as `sweeps/zoo.json`) through two scenarios with
//! the invariant auditor on for every run:
//!
//! 1. **steady** — the Fig 14 operating point (work-normalized constant
//!    load at a 50 % high-V_r mix, offered just inside capacity), the
//!    throughput/goodput reading;
//! 2. **storm** — the `fig_faults` mid-run fault storm, the robustness
//!    reading.
//!
//! The zoo is the registry's proving ground: a contender registered with
//! typed params joins the table by adding one line to a sweep file, and
//! the `fig_zoo` binary gates on zero auditor violations across every
//! (scheme, scenario) cell before recording the points into
//! `BENCH_sim.json` under the `fig_zoo` key.

use crate::fig14_throughput::OVERDRIVE;
use crate::fig_faults::storm_for;
use crate::loads::rate_factor;
use crate::scale::Scale;
use mlp_engine::config::{ExperimentConfig, MixSpec};
use mlp_engine::experiment::Experiment;
use mlp_engine::registry::SchemeSpec;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_engine::sweep::SweepConfig;
use mlp_model::RequestCatalog;
use mlp_workload::patterns::WorkloadPattern;
use serde::Serialize;

/// The default zoo: the five paper schemes, the healing-off ablation,
/// and the local-search contender.
pub fn default_sweep() -> SweepConfig {
    let mut schemes: Vec<SchemeSpec> = Scheme::PAPER.iter().map(|s| s.spec()).collect();
    schemes.push(SchemeSpec::parse("vmlp:healing=off").expect("static spec parses"));
    schemes.push(SchemeSpec::named("searchsched"));
    SweepConfig::new(schemes)
}

/// One (scheme, both-scenarios) row of the zoo table.
#[derive(Debug, Clone, Serialize)]
pub struct ZooPoint {
    /// Registry-derived display label.
    pub scheme: String,
    /// Canonical spec string (re-parseable via `SchemeSpec::parse`).
    pub spec: String,
    /// Steady-state goodput (SLO-compliant completions/s).
    pub goodput_rps: f64,
    /// Steady-state raw completions/s.
    pub throughput_rps: f64,
    /// Steady-state end-to-end P99, ms.
    pub p99_ms: f64,
    /// Steady-state SLO-violation fraction.
    pub violation_rate: f64,
    /// Steady-state mean cluster utilization.
    pub utilization: f64,
    /// Goodput under the fault storm.
    pub storm_goodput_rps: f64,
    /// Completions under the storm.
    pub storm_completed: usize,
    /// Crash-replans issued under the storm.
    pub storm_crash_replans: u64,
    /// `storm_goodput_rps / goodput_rps` — robustness retention.
    pub storm_retention: f64,
    /// Auditor violations summed over both scenarios (must be zero).
    pub invariant_violations: u64,
}

/// The steady-state config: the Fig 14 mid-point cell (constant pattern,
/// 50 % high-V_r mix, work-normalized rate at [`OVERDRIVE`]), auditor on.
pub fn steady_config(scale: &Scale, scheme: SchemeSpec, seed: u64) -> ExperimentConfig {
    let mix = MixSpec::HighRatio(0.5);
    let f = rate_factor(mix, &RequestCatalog::paper());
    let rate = scale.max_rate * f * (OVERDRIVE * (2.0 / f).min(1.0));
    scale
        .config(scheme)
        .with_pattern(WorkloadPattern::Constant)
        .with_mix(mix)
        .with_rate(rate)
        .with_seed(seed)
        .with_auditor(true)
}

/// The storm config: the `fig_faults` storm over the scale's default
/// pattern, auditor on.
pub fn storm_config(scale: &Scale, scheme: SchemeSpec, seed: u64) -> ExperimentConfig {
    scale.config(scheme).with_seed(seed).with_faults(storm_for(scale)).with_auditor(true)
}

/// Runs one scheme through both scenarios.
pub fn data_point(scale: &Scale, scheme: &SchemeSpec, seed: u64) -> ZooPoint {
    let steady = Experiment::from_config(steady_config(scale, scheme.clone(), seed))
        .run()
        .expect("zoo steady config is valid");
    let storm = Experiment::from_config(storm_config(scale, scheme.clone(), seed))
        .run()
        .expect("zoo storm config is valid");
    ZooPoint {
        scheme: scheme.display_name(),
        spec: scheme.to_string(),
        goodput_rps: steady.goodput(),
        throughput_rps: steady.throughput(),
        p99_ms: steady.latency_ms[2],
        violation_rate: steady.violation_rate,
        utilization: steady.mean_utilization,
        storm_goodput_rps: storm.goodput(),
        storm_completed: storm.completed,
        storm_crash_replans: storm.crash_replans,
        storm_retention: if steady.goodput() > 0.0 {
            storm.goodput() / steady.goodput()
        } else {
            0.0
        },
        invariant_violations: steady.invariant_violations + storm.invariant_violations,
    }
}

/// Runs the whole zoo.
///
/// Honors the process-wide [`mlp_engine::shutdown`] flag: ctrl-c drains
/// the in-progress run at its next sampling tick, discards that
/// scheme's truncated point, and returns the completed points so the
/// caller can still flush a partial `BENCH_sim.json`.
pub fn data(scale: &Scale, seed: u64, sweep: &SweepConfig) -> Vec<ZooPoint> {
    let mut points = Vec::with_capacity(sweep.schemes.len());
    for scheme in &sweep.schemes {
        if mlp_engine::shutdown::requested() {
            break;
        }
        eprintln!("fig_zoo: {} (steady + storm)…", scheme.display_name());
        let point = data_point(scale, scheme, seed);
        if mlp_engine::shutdown::requested() {
            eprintln!("fig_zoo: {} interrupted — discarding its partial point", point.scheme);
            break;
        }
        points.push(point);
    }
    points
}

/// Renders the zoo table.
pub fn report(points: &[ZooPoint], scale: &Scale) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scheme.clone(),
                format!("{:.1}", p.goodput_rps),
                format!("{:.1}", p.throughput_rps),
                format!("{:.1}", p.p99_ms),
                format!("{:.1}%", p.violation_rate * 100.0),
                format!("{:.0}%", p.utilization * 100.0),
                format!("{:.1}", p.storm_goodput_rps),
                format!("{}", p.storm_crash_replans),
                format!("{:.0}%", p.storm_retention * 100.0),
                format!("{}", p.invariant_violations),
            ]
        })
        .collect();
    report::table(
        &format!(
            "Scheduler zoo — steady goodput and fault-storm retention, auditor on ({})",
            scale.label
        ),
        &[
            "scheme",
            "goodput",
            "thr r/s",
            "p99 ms",
            "viol",
            "util",
            "storm good",
            "replans",
            "retained",
            "audit viol",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed default zoo covers every registered scheme at least
    /// once, plus the healing ablation — so the CI smoke run exercises
    /// the full registry.
    #[test]
    fn default_zoo_covers_the_registry() {
        let sweep = default_sweep();
        sweep.validate().unwrap();
        let names: Vec<&str> = sweep.schemes.iter().map(|s| s.name()).collect();
        for registered in mlp_engine::registry::default_registry().names() {
            assert!(
                names.contains(&registered),
                "registered scheme {registered} missing from the default zoo"
            );
        }
        assert_eq!(sweep.labels().last().map(String::as_str), Some("SearchSched"));
        assert!(sweep.labels().contains(&"v-MLP[healing=off]".to_string()));
    }

    /// One zoo cell at tiny scale: both scenarios run, the auditor stays
    /// clean, and the point serializes with its re-parseable spec.
    #[test]
    fn search_contender_runs_clean_at_tiny_scale() {
        let sweep = SweepConfig::new(vec![SchemeSpec::named("searchsched")]);
        let points = data(&Scale::tiny(), 7, &sweep);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.scheme, "SearchSched");
        assert_eq!(p.invariant_violations, 0, "auditor must stay clean");
        assert!(p.goodput_rps > 0.0);
        assert!(p.storm_completed > 0, "the storm must not zero the contender");
        SchemeSpec::parse(&p.spec).expect("recorded spec re-parses");
    }
}
