//! # mlp-bench — figure/table regeneration harness
//!
//! One module per table and figure of the paper's evaluation. Each module
//! exposes a `report(scale) -> String` function that regenerates the
//! figure's rows/series as plain text; the `src/bin/*` binaries are thin
//! wrappers. The Criterion benches under `benches/` measure the hot
//! scheduling kernels and whole-simulation throughput.
//!
//! All experiments are seeded and deterministic. Absolute numbers differ
//! from the paper (our substrate is a synthetic simulator, theirs was
//! profiled on a physical testbed); the *shape* — which scheme wins, by
//! roughly what factor, where the crossovers sit — is what each report is
//! asserted against (see EXPERIMENTS.md).

pub mod evalrun;
pub mod fig02_heterogeneity;
pub mod fig03_resources;
pub mod fig04_comm;
pub mod fig05_challenge;
pub mod fig09_patterns;
pub mod fig10_qos;
pub mod fig11_utilization;
pub mod fig12_latency;
pub mod fig13_tail;
pub mod fig14_throughput;
pub mod fig_faults;
pub mod loads;
pub mod scale;
pub mod tables;

pub use scale::Scale;

/// Parses `--scale=tiny|small|paper` from argv (default: small) for the
/// figure binaries.
pub fn scale_from_args() -> Scale {
    for arg in std::env::args() {
        if let Some(v) = arg.strip_prefix("--scale=") {
            return match v {
                "tiny" => Scale::tiny(),
                "small" => Scale::small(),
                "paper" => Scale::paper(),
                other => {
                    eprintln!("unknown scale '{other}', using small");
                    Scale::small()
                }
            };
        }
    }
    Scale::small()
}
