//! # mlp-bench — figure/table regeneration harness
//!
//! One module per table and figure of the paper's evaluation. Each module
//! exposes a `report(scale) -> String` function that regenerates the
//! figure's rows/series as plain text; the `src/bin/*` binaries are thin
//! wrappers. The Criterion benches under `benches/` measure the hot
//! scheduling kernels and whole-simulation throughput.
//!
//! All experiments are seeded and deterministic. Absolute numbers differ
//! from the paper (our substrate is a synthetic simulator, theirs was
//! profiled on a physical testbed); the *shape* — which scheme wins, by
//! roughly what factor, where the crossovers sit — is what each report is
//! asserted against (see EXPERIMENTS.md).

pub mod evalrun;
pub mod fig02_heterogeneity;
pub mod fig03_resources;
pub mod fig04_comm;
pub mod fig05_challenge;
pub mod fig09_patterns;
pub mod fig10_qos;
pub mod fig11_utilization;
pub mod fig12_latency;
pub mod fig13_tail;
pub mod fig14_throughput;
pub mod fig_faults;
pub mod loads;
pub mod scale;
pub mod tables;

pub use scale::Scale;

/// Parses `--audit=FILE` from argv for the figure binaries. When present,
/// the binary runs an audited companion experiment via [`audit_run`] after
/// printing its report.
pub fn audit_from_args() -> Option<std::path::PathBuf> {
    std::env::args().find_map(|a| a.strip_prefix("--audit=").map(std::path::PathBuf::from))
}

/// Runs one audited experiment (decision trail + invariant auditor) and
/// writes the JSONL trail to `path`, reporting auditor status to stderr.
/// Kept separate from the figure sweeps so their reports stay
/// byte-identical whether or not auditing was requested.
pub fn audit_run(config: mlp_engine::config::ExperimentConfig, path: &std::path::Path) {
    let cfg = config.with_audit(true).with_auditor(true);
    let catalog = mlp_model::RequestCatalog::paper();
    let (result, sim) = mlp_engine::runner::run_experiment_full(&cfg, &catalog);
    match sim.audit.write_jsonl(path) {
        Ok(()) => eprintln!(
            "audit: {} decisions saved to {} ({} dropped by the ring buffer)",
            sim.audit.len(),
            path.display(),
            sim.audit.dropped(),
        ),
        Err(e) => eprintln!("audit: cannot save trail: {e}"),
    }
    match &sim.invariant_report {
        None => eprintln!("auditor: no invariant violations"),
        Some(report) => {
            eprintln!("auditor: {} VIOLATIONS\n{report}", result.invariant_violations)
        }
    }
}

/// Parses `--scale=tiny|small|paper` from argv (default: small) for the
/// figure binaries.
pub fn scale_from_args() -> Scale {
    for arg in std::env::args() {
        if let Some(v) = arg.strip_prefix("--scale=") {
            return match v {
                "tiny" => Scale::tiny(),
                "small" => Scale::small(),
                "paper" => Scale::paper(),
                other => {
                    eprintln!("unknown scale '{other}', using small");
                    Scale::small()
                }
            };
        }
    }
    Scale::small()
}
