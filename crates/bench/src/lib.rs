//! # mlp-bench — figure/table regeneration harness
//!
//! One module per table and figure of the paper's evaluation. Each module
//! exposes a `report(scale) -> String` function that regenerates the
//! figure's rows/series as plain text; the `src/bin/*` binaries are thin
//! wrappers. The Criterion benches under `benches/` measure the hot
//! scheduling kernels and whole-simulation throughput.
//!
//! All experiments are seeded and deterministic. Absolute numbers differ
//! from the paper (our substrate is a synthetic simulator, theirs was
//! profiled on a physical testbed); the *shape* — which scheme wins, by
//! roughly what factor, where the crossovers sit — is what each report is
//! asserted against (see EXPERIMENTS.md).

pub mod evalrun;
pub mod fig02_heterogeneity;
pub mod fig03_resources;
pub mod fig04_comm;
pub mod fig05_challenge;
pub mod fig09_patterns;
pub mod fig10_qos;
pub mod fig11_utilization;
pub mod fig12_latency;
pub mod fig13_tail;
pub mod fig14_throughput;
pub mod fig_faults;
pub mod fig_scale;
pub mod fig_soak;
pub mod loads;
pub mod scale;
pub mod tables;

pub use scale::Scale;

/// Parses `--audit=FILE` from argv for the figure binaries. When present,
/// the binary runs an audited companion experiment via [`audit_run`] after
/// printing its report.
pub fn audit_from_args() -> Option<std::path::PathBuf> {
    std::env::args().find_map(|a| a.strip_prefix("--audit=").map(std::path::PathBuf::from))
}

/// Runs one audited experiment (decision trail + invariant auditor) and
/// writes the JSONL trail to `path`, reporting auditor status to stderr.
/// Kept separate from the figure sweeps so their reports stay
/// byte-identical whether or not auditing was requested.
pub fn audit_run(config: mlp_engine::config::ExperimentConfig, path: &std::path::Path) {
    let cfg = config.with_audit(true).with_auditor(true);
    let catalog = mlp_model::RequestCatalog::paper();
    let (result, sim) = mlp_engine::experiment::Experiment::from_config(cfg)
        .catalog(&catalog)
        .run_full()
        .expect("audit config is valid");
    match sim.audit.write_jsonl(path) {
        Ok(()) => eprintln!(
            "audit: {} decisions saved to {} ({} dropped by the ring buffer)",
            sim.audit.len(),
            path.display(),
            sim.audit.dropped(),
        ),
        Err(e) => eprintln!("audit: cannot save trail: {e}"),
    }
    match &sim.invariant_report {
        None => eprintln!("auditor: no invariant violations"),
        Some(report) => {
            eprintln!("auditor: {} VIOLATIONS\n{report}", result.invariant_violations)
        }
    }
}

/// Repo-root path of the committed benchmark snapshot.
pub fn bench_json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json")
}

/// Merges `own` top-level entries into `BENCH_sim.json`, replacing keys it
/// owns and preserving every other key already in the file (so the
/// `perf_baseline` snapshot and the `fig_scale` trajectory can coexist in
/// one committed artifact). Unreadable or corrupt existing contents are
/// discarded rather than propagated.
pub fn merge_bench_json(own: Vec<(String, serde_json::Value)>) {
    use serde_json::Value;
    let path = bench_json_path();
    let mut entries = own;
    if let Ok(Value::Object(existing)) = std::fs::read_to_string(path)
        .map_err(|_| ())
        .and_then(|s| serde_json::from_str::<Value>(&s).map_err(|_| ()))
    {
        for (k, v) in existing {
            if !entries.iter().any(|(own_k, _)| *own_k == k) {
                entries.push((k, v));
            }
        }
    }
    let json =
        serde_json::to_string_pretty(&Value::Object(entries)).expect("bench snapshot serializes");
    std::fs::write(path, json + "\n").expect("write BENCH_sim.json");
    eprintln!("wrote {path}");
}

/// Parses `--scale=tiny|small|paper` from argv (default: small) for the
/// figure binaries.
pub fn scale_from_args() -> Scale {
    for arg in std::env::args() {
        if let Some(v) = arg.strip_prefix("--scale=") {
            return match v {
                "tiny" => Scale::tiny(),
                "small" => Scale::small(),
                "paper" => Scale::paper(),
                other => {
                    eprintln!("unknown scale '{other}', using small");
                    Scale::small()
                }
            };
        }
    }
    Scale::small()
}
