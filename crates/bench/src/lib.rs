//! # mlp-bench — figure/table regeneration harness
//!
//! One module per table and figure of the paper's evaluation. Each module
//! exposes a `report(scale) -> String` function that regenerates the
//! figure's rows/series as plain text; the `src/bin/*` binaries are thin
//! wrappers. The Criterion benches under `benches/` measure the hot
//! scheduling kernels and whole-simulation throughput.
//!
//! All experiments are seeded and deterministic. Absolute numbers differ
//! from the paper (our substrate is a synthetic simulator, theirs was
//! profiled on a physical testbed); the *shape* — which scheme wins, by
//! roughly what factor, where the crossovers sit — is what each report is
//! asserted against (see EXPERIMENTS.md).

pub mod evalrun;
pub mod fig02_heterogeneity;
pub mod fig03_resources;
pub mod fig04_comm;
pub mod fig05_challenge;
pub mod fig09_patterns;
pub mod fig10_qos;
pub mod fig11_utilization;
pub mod fig12_latency;
pub mod fig13_tail;
pub mod fig14_throughput;
pub mod fig_faults;
pub mod fig_overload;
pub mod fig_scale;
pub mod fig_serve;
pub mod fig_soak;
pub mod fig_zoo;
pub mod loads;
pub mod scale;
pub mod tables;

pub use scale::Scale;

/// Parses `--audit=FILE` from argv for the figure binaries. When present,
/// the binary runs an audited companion experiment via [`audit_run`] after
/// printing its report.
pub fn audit_from_args() -> Option<std::path::PathBuf> {
    std::env::args().find_map(|a| a.strip_prefix("--audit=").map(std::path::PathBuf::from))
}

/// Runs one audited experiment (decision trail + invariant auditor) and
/// writes the JSONL trail to `path`, reporting auditor status to stderr.
/// Kept separate from the figure sweeps so their reports stay
/// byte-identical whether or not auditing was requested.
pub fn audit_run(config: mlp_engine::config::ExperimentConfig, path: &std::path::Path) {
    let cfg = config.with_audit(true).with_auditor(true);
    let catalog = mlp_model::RequestCatalog::paper();
    let (result, sim) = mlp_engine::experiment::Experiment::from_config(cfg)
        .catalog(&catalog)
        .run_full()
        .expect("audit config is valid");
    match sim.audit.write_jsonl(path) {
        Ok(()) => eprintln!(
            "audit: {} decisions saved to {} ({} dropped by the ring buffer)",
            sim.audit.len(),
            path.display(),
            sim.audit.dropped(),
        ),
        Err(e) => eprintln!("audit: cannot save trail: {e}"),
    }
    match &sim.invariant_report {
        None => eprintln!("auditor: no invariant violations"),
        Some(report) => {
            eprintln!("auditor: {} VIOLATIONS\n{report}", result.invariant_violations)
        }
    }
}

/// Repo-root path of the committed benchmark snapshot.
pub fn bench_json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json")
}

/// Merges `own` top-level entries into `BENCH_sim.json`, replacing keys it
/// owns and preserving every other key already in the file (so the
/// `perf_baseline` snapshot and the `fig_scale` trajectory can coexist in
/// one committed artifact). Unreadable or corrupt existing contents are
/// discarded rather than propagated.
pub fn merge_bench_json(own: Vec<(String, serde_json::Value)>) {
    let path = std::path::Path::new(bench_json_path());
    merge_bench_json_at(path, own).expect("write BENCH_sim.json");
    eprintln!("wrote {}", path.display());
}

/// Path-parameterized core of [`merge_bench_json`]. The snapshot is
/// written to a sibling temp file and atomically renamed into place: a run
/// that dies mid-write (OOM kill, ctrl-C between figure sweeps) used to
/// leave a truncated `BENCH_sim.json` behind, and the *next* merge would
/// read it as corrupt and silently drop every sibling key.
pub fn merge_bench_json_at(
    path: &std::path::Path,
    own: Vec<(String, serde_json::Value)>,
) -> std::io::Result<()> {
    use serde_json::Value;
    let mut entries = own;
    if let Ok(Value::Object(existing)) = std::fs::read_to_string(path)
        .map_err(|_| ())
        .and_then(|s| serde_json::from_str::<Value>(&s).map_err(|_| ()))
    {
        for (k, v) in existing {
            if !entries.iter().any(|(own_k, _)| *own_k == k) {
                entries.push((k, v));
            }
        }
    }
    let json =
        serde_json::to_string_pretty(&Value::Object(entries)).expect("bench snapshot serializes");
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json + "\n")?;
    std::fs::rename(&tmp, path)
}

/// Parses `--sweep=FILE` from argv for the figure binaries: loads and
/// registry-validates a [`SweepConfig`](mlp_engine::sweep::SweepConfig),
/// exiting with the error's code (2 = invalid, 4 = I/O) when the file is
/// missing or malformed. `None` when the flag is absent — the binary
/// falls back to its committed default sweep.
pub fn sweep_from_args() -> Option<mlp_engine::sweep::SweepConfig> {
    let path =
        std::env::args().find_map(|a| a.strip_prefix("--sweep=").map(std::path::PathBuf::from))?;
    let load = mlp_engine::sweep::SweepConfig::load(&path).and_then(|sweep| {
        sweep.validate()?;
        Ok(sweep)
    });
    match load {
        Ok(sweep) => Some(sweep),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code() as i32);
        }
    }
}

/// Parses `--scale=tiny|small|paper` from argv (default: small) for the
/// figure binaries.
pub fn scale_from_args() -> Scale {
    for arg in std::env::args() {
        if let Some(v) = arg.strip_prefix("--scale=") {
            return match v {
                "tiny" => Scale::tiny(),
                "small" => Scale::small(),
                "paper" => Scale::paper(),
                other => {
                    eprintln!("unknown scale '{other}', using small");
                    Scale::small()
                }
            };
        }
    }
    Scale::small()
}

#[cfg(test)]
mod tests {
    use super::merge_bench_json_at;
    use serde_json::Value;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlp_bench_merge_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn read_value(path: &std::path::Path) -> Value {
        serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap()
    }

    #[test]
    fn merge_preserves_sibling_keys_across_runs() {
        let dir = tmp_dir("siblings");
        let path = dir.join("BENCH_sim.json");
        merge_bench_json_at(&path, vec![("fig_a".into(), Value::Str("one".into()))]).unwrap();
        merge_bench_json_at(&path, vec![("fig_b".into(), Value::Bool(false))]).unwrap();
        // Re-running an owner replaces its key without touching siblings.
        merge_bench_json_at(&path, vec![("fig_a".into(), Value::Str("two".into()))]).unwrap();
        let v = read_value(&path);
        assert_eq!(v.get("fig_a"), Some(&Value::Str("two".into())));
        assert_eq!(v.get("fig_b"), Some(&Value::Bool(false)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression for the early-exit bug: the snapshot must be replaced
    /// atomically (temp file + rename), never truncated in place. A
    /// half-written file from a killed run is treated as corrupt on the
    /// next merge, but that merge still produces a complete, valid
    /// snapshot and leaves no temp debris behind.
    #[test]
    fn merge_is_atomic_and_recovers_from_truncation() {
        let dir = tmp_dir("atomic");
        let path = dir.join("BENCH_sim.json");
        // Simulate a run killed mid-write under the old non-atomic scheme.
        std::fs::write(&path, "{\"fig_a\": {\"x\": 1}, \"fig_").unwrap();
        merge_bench_json_at(&path, vec![("fig_b".into(), Value::Bool(true))]).unwrap();
        let v = read_value(&path);
        assert_eq!(v.get("fig_b"), Some(&Value::Bool(true)));
        assert!(!path.with_extension("json.tmp").exists(), "temp file must be renamed away");
        // A failed write (unwritable directory) must not corrupt anything:
        // the error surfaces instead of a partial file.
        let missing = dir.join("no_such_dir").join("BENCH_sim.json");
        assert!(merge_bench_json_at(&missing, vec![("k".into(), Value::Null)]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
