//! Fig 11 — efficiency: cluster utilization around a workload peak.
//!
//! The paper runs the 100 s schedule with the load peak arriving at the
//! 40th second and plots `U(t)` for all schemes: everyone's utilization
//! jumps at the peak; the baselines then sag (mismatched allocations and
//! ignored dependencies), while v-MLP restores its pre-peak level.

use crate::evalrun::{run_cells, Cell};
use crate::scale::Scale;
use mlp_engine::report;
use mlp_engine::scheme::Scheme;
use mlp_stats::TimeSeries;
use mlp_workload::WorkloadPattern;

/// Peak arrival second (fixed by the L1 pattern definition).
pub const PEAK_AT_S: f64 = 40.0;

/// Per-scheme utilization curves. The horizon is pinned to the paper's
/// 100 s so the 40 s peak and the recovery window are both visible.
pub fn data(scale: Scale, seed: u64) -> Vec<(String, TimeSeries)> {
    let scale = Scale { horizon_s: scale.horizon_s.max(100.0), ..scale };
    let cells: Vec<Cell> = Scheme::PAPER
        .into_iter()
        .map(|scheme| Cell { pattern: WorkloadPattern::L1Pulse, ..Cell::new(scheme) })
        .collect();
    run_cells(scale, &cells, seed).into_iter().map(|r| (r.scheme, r.util_series)).collect()
}

/// Mean utilization of a series over `[from_s, to_s)`.
pub fn window_mean(ts: &TimeSeries, from_s: f64, to_s: f64) -> f64 {
    let step = ts.step();
    let lo = (from_s / step) as usize;
    let hi = ((to_s / step) as usize).min(ts.len());
    if lo >= hi {
        return 0.0;
    }
    ts.values()[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
}

/// Renders the curves plus before/peak/after means.
pub fn report(scale: Scale, seed: u64) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    for (scheme, ts) in data(scale, seed) {
        out.push_str(&report::series(
            &format!("Fig 11 — cluster utilization U(t), {scheme} (L1, peak @ {PEAK_AT_S}s)"),
            ts.step(),
            ts.values(),
        ));
        let before = window_mean(&ts, 5.0, 35.0);
        let peak = window_mean(&ts, 38.0, 48.0);
        let after = window_mean(&ts, 55.0, 95.0_f64.min(scale.horizon_s));
        rows.push(vec![
            scheme.to_string(),
            report::f(before),
            report::f(peak),
            report::f(after),
            report::f(after / before.max(1e-9)),
        ]);
    }
    out.push('\n');
    out.push_str(&report::table(
        "Fig 11 summary — mean U before (5–35s), at peak (38–48s), after (55s+)",
        &["scheme", "before", "peak", "after", "after/before"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evalrun::{run_cells, Cell};
    use mlp_engine::scheme::Scheme;

    #[test]
    fn peak_raises_utilization_for_everyone() {
        // Needs the full 100 s horizon to see the 40 s peak.
        let scale = Scale { machines: 4, max_rate: 28.0, horizon_s: 100.0, seeds: 1, label: "t" };
        // Two representative schemes keep the debug-mode test quick.
        let cells = [Cell::new(Scheme::FairSched), Cell::new(Scheme::VMlp)];
        let curves: Vec<(String, mlp_stats::TimeSeries)> =
            run_cells(scale, &cells, 4).into_iter().map(|r| (r.scheme, r.util_series)).collect();
        for (scheme, ts) in curves {
            let before = window_mean(&ts, 5.0, 35.0);
            let peak = window_mean(&ts, 38.0, 48.0);
            assert!(
                peak > before * 1.3,
                "{scheme}: peak {peak:.3} should clearly exceed before {before:.3}"
            );
        }
    }
}
