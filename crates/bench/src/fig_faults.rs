//! Fault-storm scenario — robustness extension beyond the paper.
//!
//! Replays the same offered load against a mid-run fault storm (machine
//! crashes with outages, transient invocation failures, degraded network)
//! and compares how much goodput each scheme salvages. A faults-off v-MLP
//! row anchors the comparison: the gap between it and the storm rows is
//! the price of the storm, and the gap between schemes under the storm is
//! what recovery policy buys.

use crate::scale::Scale;
use mlp_engine::config::ExperimentConfig;
use mlp_engine::parallel::run_all;
use mlp_engine::report;
use mlp_engine::runner::ExperimentResult;
use mlp_engine::scheme::Scheme;
use mlp_engine::sweep::SweepConfig;
use mlp_faults::FaultConfig;

/// Schemes compared under the storm, figure order (the default sweep;
/// `sweeps/faults.json` commits the same list).
pub const SCHEMES: [Scheme; 3] = [Scheme::CurSched, Scheme::FullProfile, Scheme::VMlp];

/// The default storm sweep as a [`SweepConfig`].
pub fn default_sweep() -> SweepConfig {
    SweepConfig::new(SCHEMES.iter().map(|s| s.spec()).collect())
}

/// A storm proportioned to the run: it opens at 20 % of the horizon, rages
/// for half of it, takes out a quarter of the fleet (one machine minimum,
/// never the whole cluster) with outages an eighth of the horizon long,
/// fails 5 % of in-storm invocations, and quadruples network latency for
/// the middle quarter of the run.
pub fn storm_for(scale: &Scale) -> FaultConfig {
    let horizon_ms = (scale.horizon_s * 1000.0) as u64;
    let crashes = (scale.machines / 4).clamp(1, scale.machines.saturating_sub(1));
    FaultConfig {
        enabled: true,
        machine_crashes: crashes as u32,
        storm_start_ms: horizon_ms / 5,
        storm_duration_ms: horizon_ms / 2,
        outage_ms: horizon_ms / 8,
        transient_fail_prob: 0.05,
        degrade_start_ms: horizon_ms / 4,
        degrade_duration_ms: horizon_ms / 4,
        degrade_factor: 4.0,
    }
}

/// One run per swept scheme under the storm, plus the faults-off v-MLP
/// anchor (always the last element).
pub fn data_sweep(scale: Scale, seed: u64, sweep: &SweepConfig) -> Vec<ExperimentResult> {
    let storm = storm_for(&scale);
    let mut configs: Vec<ExperimentConfig> = sweep
        .schemes
        .iter()
        .map(|s| scale.config(s.clone()).with_seed(seed).with_faults(storm))
        .collect();
    configs.push(scale.config(Scheme::VMlp).with_seed(seed));
    run_all(&configs, 4)
}

/// [`data_sweep`] over the default storm sweep.
pub fn data(scale: Scale, seed: u64) -> Vec<ExperimentResult> {
    data_sweep(scale, seed, &default_sweep())
}

/// Renders one storm sweep.
pub fn report_sweep(scale: Scale, seed: u64, sweep: &SweepConfig) -> String {
    let results = data_sweep(scale, seed, sweep);
    let (storm_rows, anchor) = results.split_at(sweep.schemes.len());

    let row = |label: String, r: &ExperimentResult| -> Vec<String> {
        vec![
            label,
            format!("{:.1}", r.goodput()),
            format!("{}", r.completed),
            format!("{}", r.abandoned),
            format!("{:.1}%", r.violation_rate * 100.0),
            format!("{}", r.node_failures),
            format!("{}", r.fault_retries),
            format!("{}", r.machine_crashes),
            format!("{}", r.crash_replans),
            format!("{}", report::f(r.mttr_ms)),
        ]
    };

    let mut rows: Vec<Vec<String>> = storm_rows
        .iter()
        .map(|r| row(format!("{} + storm", r.config.scheme.display_name()), r))
        .collect();
    rows.push(row("v-MLP (no faults)".to_string(), &anchor[0]));

    report::table(
        &format!(
            "Fault storm — goodput under {} crashes / 5% transients / 4x degraded net ({})",
            storm_for(&scale).machine_crashes,
            scale.label
        ),
        &[
            "scheme",
            "goodput r/s",
            "completed",
            "abandoned",
            "violations",
            "node fails",
            "retries",
            "crashes",
            "replans",
            "MTTR ms",
        ],
        &rows,
    )
}

/// Renders the default storm sweep.
pub fn report(scale: Scale, seed: u64) -> String {
    report_sweep(scale, seed, &default_sweep())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The storm scenario must run end to end at tiny scale, actually
    /// injecting faults into the storm rows and none into the anchor.
    #[test]
    fn storm_scenario_runs_end_to_end() {
        let results = data(Scale::tiny(), 7);
        assert_eq!(results.len(), SCHEMES.len() + 1);
        let (storm_rows, anchor) = results.split_at(SCHEMES.len());
        for r in storm_rows {
            assert!(
                r.machine_crashes > 0,
                "{}: no crashes injected",
                r.config.scheme.display_name()
            );
            assert!(r.completed + r.unfinished >= r.arrived, "requests lost");
        }
        assert_eq!(anchor[0].machine_crashes, 0);
        assert_eq!(anchor[0].abandoned, 0);
        // The anchor faces no faults, so it completes at least as much as
        // the same scheduler under the storm.
        let vmlp_storm = storm_rows.last().unwrap();
        assert!(anchor[0].completed >= vmlp_storm.completed);
    }

    #[test]
    fn storm_scales_with_the_run() {
        let tiny = storm_for(&Scale::tiny());
        assert!(tiny.machine_crashes >= 1);
        assert!((tiny.machine_crashes as usize) < Scale::tiny().machines);
        let paper = storm_for(&Scale::paper());
        assert_eq!(paper.machine_crashes, 25);
        assert!(paper.storm_start_ms < paper.storm_start_ms + paper.storm_duration_ms);
    }
}
