//! Profiling harness: one v-MLP soak leg (40k requests) and nothing else,
//! so a sampling profiler sees only the scheme under test. Not a figure.

use mlp_bench::{fig_soak, Scale};
use mlp_engine::scheme::Scheme;

fn main() {
    let scale = if std::env::args().any(|a| a == "--scale=paper") {
        Scale::paper()
    } else {
        Scale::small()
    };
    let requests = fig_soak::request_target(&scale);
    let p = fig_soak::data_point(Scheme::VMlp, requests, 2022);
    println!("{}: {:.1} µs/req over {} arrivals", p.scheme, p.wall_us_per_req, p.arrived);
}
