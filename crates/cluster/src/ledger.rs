//! Future-resource reservation ledger.
//!
//! Algorithm 1 assigns a microservice to a machine only if, over the whole
//! planned window `[t, t+Δt]`, the machine's remaining resources cover the
//! service's demand (`l_res ≥ u_res`). That requires *looking into the
//! planned future* of each machine, which this ledger provides: a timeline
//! of reservation deltas supporting window-peak queries.
//!
//! # Indexed step-function profile
//!
//! The ledger is stored as a sorted segment array of `(time, delta)` pairs
//! plus an incrementally maintained *prefix profile*: `prefix[i]` is the
//! usage level in force on `[times[i], times[i+1])`. Writes rebuild the
//! prefix from the lowest modified index using the exact left-to-right
//! fold `prefix[i] = prefix[i-1] + delta[i]` (identical float-addition
//! order to a naive rescan from `base`, so every query answer is
//! bit-identical to the reference [`NaiveLedger`](crate::ledger_naive::NaiveLedger)).
//! On top of the profile sit coarse-bucket component-wise min/max
//! summaries ([`BUCKET`] levels per bucket) and a cached whole-timeline
//! minimum level:
//!
//! * [`usage_at`](ResourceLedger::usage_at) — one binary search, O(log n).
//! * [`peak_usage`](ResourceLedger::peak_usage) /
//!   [`available`](ResourceLedger::available) /
//!   [`fits`](ResourceLedger::fits) — binary search + bucket-max range
//!   query, O(log n + BUCKET + n/BUCKET).
//! * [`earliest_fit`](ResourceLedger::earliest_fit) — walks only the
//!   fit/unfit run boundaries inside the window, skipping whole buckets
//!   via the cached maxima/minima.
//! * [`might_fit`](ResourceLedger::might_fit) — O(1) conservative
//!   pre-filter for placement: `false` guarantees no window anywhere in
//!   the retained future fits `amount`, letting the placement loop prune
//!   machines without touching the timeline. The cached minimum is
//!   invalidated (recomputed) only on ledger writes and crashes.
//!
//! Writes stay O(n) worst-case (array insert + suffix rebuild), but the
//! admission loop issues orders of magnitude more queries than writes —
//! every waiting node probes every machine — which is exactly the balance
//! this layout optimizes for.

use mlp_model::ResourceVector;
use mlp_sim::SimTime;

/// Number of profile levels summarized per min/max bucket.
///
/// Queries cost O(BUCKET + n/BUCKET) after the binary search; 64 keeps
/// both terms small for the timeline lengths the simulation produces
/// (hundreds to a few thousand points under load) while the summaries
/// stay cheap to rebuild on writes.
const BUCKET: usize = 64;

/// Global (process-wide) counters over ledger operations, used by the
/// `perf_baseline` runner to report how query-heavy a simulation run is.
/// Disabled by default: when off, the only cost on the query path is one
/// relaxed load of a read-only flag.
pub mod query_stats {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static USAGE_AT: AtomicU64 = AtomicU64::new(0);
    static PEAK_USAGE: AtomicU64 = AtomicU64::new(0);
    static EARLIEST_FIT: AtomicU64 = AtomicU64::new(0);
    static WRITES: AtomicU64 = AtomicU64::new(0);

    /// Snapshot of the ledger operation counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
    pub struct LedgerQueryStats {
        /// `usage_at` calls.
        pub usage_at: u64,
        /// `peak_usage` calls (including via `available`/`fits`).
        pub peak_usage: u64,
        /// `earliest_fit` calls.
        pub earliest_fit: u64,
        /// `reserve` + `unreserve` calls.
        pub writes: u64,
    }

    /// Turns counting on or off (off by default).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Relaxed);
    }

    /// Zeroes all counters.
    pub fn reset() {
        USAGE_AT.store(0, Relaxed);
        PEAK_USAGE.store(0, Relaxed);
        EARLIEST_FIT.store(0, Relaxed);
        WRITES.store(0, Relaxed);
    }

    /// Reads all counters.
    pub fn snapshot() -> LedgerQueryStats {
        LedgerQueryStats {
            usage_at: USAGE_AT.load(Relaxed),
            peak_usage: PEAK_USAGE.load(Relaxed),
            earliest_fit: EARLIEST_FIT.load(Relaxed),
            writes: WRITES.load(Relaxed),
        }
    }

    #[inline]
    pub(super) fn count(counter: Counter) {
        if ENABLED.load(Relaxed) {
            let c = match counter {
                Counter::UsageAt => &USAGE_AT,
                Counter::PeakUsage => &PEAK_USAGE,
                Counter::EarliestFit => &EARLIEST_FIT,
                Counter::Write => &WRITES,
            };
            c.fetch_add(1, Relaxed);
        }
    }

    #[derive(Clone, Copy)]
    pub(super) enum Counter {
        UsageAt,
        PeakUsage,
        EarliestFit,
        Write,
    }
}

use query_stats::Counter;

/// A per-machine timeline of planned resource occupancy.
///
/// Reservations are half-open intervals `[from, to)`. Queries report the
/// component-wise *peak* usage over a window, so a fit check is exact
/// regardless of how reservations overlap. See the module docs for the
/// index layout and complexity bounds.
#[derive(Debug, Clone)]
pub struct ResourceLedger {
    capacity: ResourceVector,
    /// Usage level before the first retained breakpoint (maintained by
    /// pruning).
    base: ResourceVector,
    /// Sorted breakpoint instants (µs).
    times: Vec<u64>,
    /// Net usage change at each breakpoint, aligned with `times`.
    deltas: Vec<ResourceVector>,
    /// Usage level in force from `times[i]` (inclusive) to the next
    /// breakpoint: the left-to-right prefix fold of `base` and `deltas`.
    prefix: Vec<ResourceVector>,
    /// Component-wise max of `prefix` per [`BUCKET`]-sized chunk.
    bucket_max: Vec<ResourceVector>,
    /// Component-wise min of `prefix` per [`BUCKET`]-sized chunk.
    bucket_min: Vec<ResourceVector>,
    /// Component-wise min over `base` and every prefix level — the lowest
    /// usage the retained future ever reaches. Drives [`might_fit`].
    ///
    /// [`might_fit`]: ResourceLedger::might_fit
    min_level: ResourceVector,
    /// Monotonic write counter: bumped on every mutation that can change a
    /// query answer (`reserve`/`unreserve`, crash [`clear`], and
    /// [`prune_before`]). Lets placement-probe caches validate a memoized
    /// `earliest_fit`/`available` answer in O(1) — an unchanged epoch means
    /// the timeline is bit-identical to when the probe ran.
    ///
    /// [`clear`]: ResourceLedger::clear
    /// [`prune_before`]: ResourceLedger::prune_before
    epoch: u64,
}

impl ResourceLedger {
    /// Creates an empty ledger for a machine with the given capacity.
    pub fn new(capacity: ResourceVector) -> Self {
        ResourceLedger {
            capacity,
            base: ResourceVector::ZERO,
            times: Vec::new(),
            deltas: Vec::new(),
            prefix: Vec::new(),
            bucket_max: Vec::new(),
            bucket_min: Vec::new(),
            min_level: ResourceVector::ZERO,
            epoch: 0,
        }
    }

    /// Machine capacity.
    pub fn capacity(&self) -> ResourceVector {
        self.capacity
    }

    /// The current write epoch (see the field docs). Strictly increases on
    /// every `reserve`/`unreserve`/`clear`/`prune_before`; equal epochs
    /// guarantee every query answers exactly as it did before.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Inserts (or accumulates into) the delta at instant `t` and returns
    /// the index it lives at. Does *not* rebuild the prefix.
    fn upsert_delta(&mut self, t: u64, amount: ResourceVector, add: bool) -> usize {
        let idx = self.times.partition_point(|&x| x < t);
        if idx == self.times.len() || self.times[idx] != t {
            self.times.insert(idx, t);
            self.deltas.insert(idx, ResourceVector::ZERO);
            // Placeholder; overwritten by the rebuild.
            self.prefix.insert(idx, ResourceVector::ZERO);
        }
        if add {
            self.deltas[idx] += amount;
        } else {
            self.deltas[idx] -= amount;
        }
        idx
    }

    /// Recomputes `prefix`, the bucket summaries, and `min_level` from
    /// index `idx` onward. The fold order matches a naive base-to-`t`
    /// rescan exactly, keeping answers bit-identical to the reference
    /// implementation.
    fn rebuild_from(&mut self, idx: usize) {
        let n = self.times.len();
        let mut acc = if idx == 0 { self.base } else { self.prefix[idx - 1] };
        for i in idx..n {
            acc += self.deltas[i];
            self.prefix[i] = acc;
        }
        let n_buckets = n.div_ceil(BUCKET);
        self.bucket_max.resize(n_buckets, ResourceVector::ZERO);
        self.bucket_min.resize(n_buckets, ResourceVector::ZERO);
        for b in idx / BUCKET..n_buckets {
            let lo = b * BUCKET;
            let hi = ((b + 1) * BUCKET).min(n);
            let mut mx = self.prefix[lo];
            let mut mn = self.prefix[lo];
            for level in &self.prefix[lo + 1..hi] {
                mx = mx.max(level);
                mn = mn.min(level);
            }
            self.bucket_max[b] = mx;
            self.bucket_min[b] = mn;
        }
        let mut min_level = self.base;
        for mn in &self.bucket_min {
            min_level = min_level.min(mn);
        }
        self.min_level = min_level;
    }

    /// Drops the breakpoint at `idx` if its delta cancelled to exactly
    /// zero. A zero delta cannot change any usage level (every reserved
    /// amount is non-negative, so exact cancellation yields `+0.0`, and
    /// `x + 0.0` is bitwise `x`), so removal leaves every query answer
    /// identical while keeping the timeline free of zombie points — the
    /// reserve-then-release churn of trims and plan rollbacks would
    /// otherwise grow it without bound between prunes.
    fn drop_if_zero(&mut self, idx: usize) {
        if self.deltas[idx] == ResourceVector::ZERO {
            self.times.remove(idx);
            self.deltas.remove(idx);
            self.prefix.remove(idx);
        }
    }

    /// Applies one reservation-shaped write (`±amount` at `from`,
    /// `∓amount` at `to`) and restores the index invariants.
    fn write(&mut self, from: SimTime, to: SimTime, amount: ResourceVector, add: bool) {
        query_stats::count(Counter::Write);
        self.epoch += 1;
        let lo = self.upsert_delta(from.as_micros(), amount, add);
        let hi = self.upsert_delta(to.as_micros(), amount, !add);
        // `hi > lo` always (the keys are distinct and sorted); removing
        // `hi` first keeps `lo` stable.
        self.drop_if_zero(hi);
        self.drop_if_zero(lo);
        self.rebuild_from(lo.min(self.times.len()));
    }

    /// Adds a reservation of `amount` over `[from, to)`.
    ///
    /// # Panics
    /// Panics if `from >= to` (empty or inverted window).
    pub fn reserve(&mut self, from: SimTime, to: SimTime, amount: ResourceVector) {
        assert!(from < to, "reservation window must be non-empty: {from} .. {to}");
        self.write(from, to, amount, true);
    }

    /// Removes a reservation previously added with identical arguments.
    /// (Used when the self-healing module re-plans a late service.)
    pub fn unreserve(&mut self, from: SimTime, to: SimTime, amount: ResourceVector) {
        assert!(from < to, "reservation window must be non-empty");
        self.write(from, to, amount, false);
    }

    /// Usage level in force at instant `t` (index into the profile).
    #[inline]
    fn level_at(&self, t_us: u64) -> ResourceVector {
        let idx = self.times.partition_point(|&x| x <= t_us);
        if idx == 0 {
            self.base
        } else {
            self.prefix[idx - 1]
        }
    }

    /// Planned usage at instant `t`. O(log n).
    pub fn usage_at(&self, t: SimTime) -> ResourceVector {
        query_stats::count(Counter::UsageAt);
        self.level_at(t.as_micros())
    }

    /// Component-wise peak planned usage over `[from, to)`.
    /// O(log n + BUCKET + n/BUCKET) via the bucket maxima.
    pub fn peak_usage(&self, from: SimTime, to: SimTime) -> ResourceVector {
        query_stats::count(Counter::PeakUsage);
        // Breakpoints strictly inside (from, to): same key range the
        // reference scan visits (`from+1 ..= to-1` on µs keys). `lo` is
        // also exactly the partition point `level_at(from)` searches for,
        // so the level in force at `from` falls out without a second
        // binary search.
        let lo = self.times.partition_point(|&x| x <= from.as_micros());
        let mut peak = if lo == 0 { self.base } else { self.prefix[lo - 1] };
        let hi = self.times.partition_point(|&x| x < to.as_micros());
        let mut i = lo;
        while i < hi {
            if i % BUCKET == 0 && i + BUCKET <= hi {
                peak = peak.max(&self.bucket_max[i / BUCKET]);
                i += BUCKET;
            } else {
                peak = peak.max(&self.prefix[i]);
                i += 1;
            }
        }
        peak
    }

    /// Resources guaranteed free over the whole window `[from, to)`.
    ///
    /// Peak usage is clamped at zero before subtracting: after a crash
    /// wipes the ledger, a straggling `unreserve` for a pre-crash window
    /// can leave net-negative deltas, and those must not inflate
    /// availability beyond capacity.
    pub fn available(&self, from: SimTime, to: SimTime) -> ResourceVector {
        (self.capacity - self.peak_usage(from, to).clamp_non_negative()).clamp_non_negative()
    }

    /// Whether `amount` fits on top of existing plans over `[from, to)`.
    pub fn fits(&self, from: SimTime, to: SimTime, amount: ResourceVector) -> bool {
        amount.fits_within(&self.available(from, to))
    }

    /// Conservative O(1) availability hint: whether `amount` could fit in
    /// *some* window of the retained future. `false` is definitive — the
    /// usage level never drops low enough anywhere on the timeline, so
    /// every [`fits`](ResourceLedger::fits) /
    /// [`earliest_fit`](ResourceLedger::earliest_fit) probe for `amount`
    /// (or more) is guaranteed to fail and the machine can be skipped
    /// without touching the timeline. `true` only means "worth probing":
    /// the cached minimum is component-wise, so simultaneous fit is not
    /// implied.
    pub fn might_fit(&self, amount: ResourceVector) -> bool {
        // Exactly the admission test's arithmetic, applied to the lowest
        // level the profile reaches (monotonicity makes it conservative).
        (amount + self.min_level.clamp_non_negative()).fits_within(&self.capacity)
    }

    /// Forgets every reservation. Used when a machine crashes: the work
    /// planned on it is void, and pre-crash reservations must not shadow
    /// the recovered (empty) machine.
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.times.clear();
        self.deltas.clear();
        self.prefix.clear();
        self.bucket_max.clear();
        self.bucket_min.clear();
        self.base = ResourceVector::ZERO;
        self.min_level = ResourceVector::ZERO;
    }

    /// Folds all deltas strictly before `t` into the base level, bounding
    /// memory over long runs. Queries for instants `>= t` are unaffected.
    pub fn prune_before(&mut self, t: SimTime) {
        let cut = self.times.partition_point(|&x| x < t.as_micros());
        if cut == 0 {
            return;
        }
        // Pruning never changes answers for instants >= t, but probe caches
        // key on (window, grant), not on instants — bump so they revalidate.
        self.epoch += 1;
        // Ascending fold into base — the same addition order a naive
        // rescan would have used, so retained levels are unchanged.
        for d in &self.deltas[..cut] {
            self.base += *d;
        }
        self.times.drain(..cut);
        self.deltas.drain(..cut);
        self.prefix.drain(..cut);
        self.rebuild_from(0);
    }

    /// Number of retained timeline points (diagnostics).
    pub fn timeline_len(&self) -> usize {
        self.times.len()
    }

    /// Earliest instant within `[from, horizon)` at which `amount` fits for
    /// a duration of `dur`. Returns `None` when no slot exists before
    /// `horizon`. This powers the "best effort" machine traversal of
    /// Algorithm 1 and the delay-slot search of the self-healing module.
    ///
    /// Walks the fit/unfit run boundaries of the piecewise-constant usage
    /// profile, skipping whole buckets through the cached maxima (while a
    /// candidate run is open) and minima (while searching for the next
    /// feasible level). Matches the reference left-to-right sweep answer
    /// for answer.
    pub fn earliest_fit(
        &self,
        from: SimTime,
        horizon: SimTime,
        dur: mlp_sim::SimDuration,
        amount: ResourceVector,
    ) -> Option<SimTime> {
        query_stats::count(Counter::EarliestFit);
        if dur.as_micros() == 0 {
            return Some(from);
        }
        if from >= horizon {
            return None;
        }
        // Negative net usage (stale unreserve after a crash-time `clear`)
        // counts as zero, never as extra headroom.
        let fits_usage = |usage: &ResourceVector| {
            (amount + usage.clamp_non_negative()).fits_within(&self.capacity)
        };

        let h = horizon.as_micros();
        // First breakpoint strictly after `from`; the level entering
        // `from` is the profile value just before it.
        let start = self.times.partition_point(|&x| x <= from.as_micros());
        let entry = if start == 0 { self.base } else { self.prefix[start - 1] };
        // `candidate` is the earliest start instant whose fit-run is still
        // open; it survives unless a non-fitting breakpoint appears before
        // both `candidate + dur` and the horizon (breakpoints at or past
        // the horizon are never examined, matching the reference sweep).
        let mut candidate: Option<u64> =
            if fits_usage(&entry) { Some(from.as_micros()) } else { None };
        let mut i = start;
        loop {
            match candidate {
                Some(c) => {
                    let limit = h.min(c.saturating_add(dur.as_micros()));
                    match self.first_unfit(i, limit, &fits_usage) {
                        None => return Some(SimTime::from_micros(c)),
                        Some(j) => {
                            candidate = None;
                            i = j + 1;
                        }
                    }
                }
                None => match self.first_fit(i, h, &fits_usage) {
                    None => return None,
                    Some(j) => {
                        candidate = Some(self.times[j]);
                        i = j + 1;
                    }
                },
            }
        }
    }

    /// First index `j >= i` with `times[j] < limit` whose level does not
    /// fit. Skips whole buckets whose component-wise max fits (then every
    /// level inside fits).
    fn first_unfit(
        &self,
        i: usize,
        limit: u64,
        fits: &impl Fn(&ResourceVector) -> bool,
    ) -> Option<usize> {
        let hi = self.times.partition_point(|&x| x < limit);
        let mut j = i;
        while j < hi {
            if j.is_multiple_of(BUCKET) {
                let b = j / BUCKET;
                if fits(&self.bucket_max[b]) {
                    j = (b + 1) * BUCKET;
                    continue;
                }
            }
            if !fits(&self.prefix[j]) {
                return Some(j);
            }
            j += 1;
        }
        None
    }

    /// Cross-checks every index invariant against a from-scratch rebuild
    /// and returns the first discrepancy found, if any. Used by the
    /// engine's invariant auditor; O(n), so only called when auditing is
    /// enabled.
    ///
    /// Checks, in order: `times` strictly sorted; `times`/`deltas`/`prefix`
    /// aligned; `prefix` bit-identical to the left-to-right fold of `base`
    /// and `deltas` (the fold order every incremental rebuild uses);
    /// bucket min/max summaries matching their chunks; and `min_level`
    /// equal to the component-wise min over `base` and all levels.
    pub fn check_consistency(&self) -> Result<(), String> {
        let n = self.times.len();
        if self.deltas.len() != n || self.prefix.len() != n {
            return Err(format!(
                "misaligned arrays: {} times, {} deltas, {} prefix",
                n,
                self.deltas.len(),
                self.prefix.len()
            ));
        }
        for w in self.times.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("times not strictly sorted: {} then {}", w[0], w[1]));
            }
        }
        let mut acc = self.base;
        for i in 0..n {
            acc += self.deltas[i];
            if self.prefix[i] != acc {
                return Err(format!("prefix[{i}] = {:?} but fold gives {:?}", self.prefix[i], acc));
            }
        }
        let n_buckets = n.div_ceil(BUCKET);
        if self.bucket_max.len() != n_buckets || self.bucket_min.len() != n_buckets {
            return Err(format!(
                "bucket summaries sized {}/{}, expected {n_buckets}",
                self.bucket_max.len(),
                self.bucket_min.len()
            ));
        }
        let mut min_level = self.base;
        for b in 0..n_buckets {
            let lo = b * BUCKET;
            let hi = ((b + 1) * BUCKET).min(n);
            let mut mx = self.prefix[lo];
            let mut mn = self.prefix[lo];
            for level in &self.prefix[lo + 1..hi] {
                mx = mx.max(level);
                mn = mn.min(level);
            }
            if self.bucket_max[b] != mx {
                return Err(format!("bucket_max[{b}] = {:?}, expected {mx:?}", self.bucket_max[b]));
            }
            if self.bucket_min[b] != mn {
                return Err(format!("bucket_min[{b}] = {:?}, expected {mn:?}", self.bucket_min[b]));
            }
            min_level = min_level.min(&mn);
        }
        if self.min_level != min_level {
            return Err(format!("min_level = {:?}, expected {min_level:?}", self.min_level));
        }
        Ok(())
    }

    /// First index `j >= i` with `times[j] < limit` whose level fits.
    /// Skips whole buckets whose component-wise min already fails on some
    /// component (then every level inside fails on that component).
    fn first_fit(
        &self,
        i: usize,
        limit: u64,
        fits: &impl Fn(&ResourceVector) -> bool,
    ) -> Option<usize> {
        let hi = self.times.partition_point(|&x| x < limit);
        let mut j = i;
        while j < hi {
            if j.is_multiple_of(BUCKET) {
                let b = j / BUCKET;
                if !fits(&self.bucket_min[b]) {
                    j = (b + 1) * BUCKET;
                    continue;
                }
            }
            if fits(&self.prefix[j]) {
                return Some(j);
            }
            j += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_sim::SimDuration;

    fn rv(c: f64) -> ResourceVector {
        ResourceVector::new(c, c * 100.0, c * 10.0)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_ledger_is_fully_available() {
        let l = ResourceLedger::new(rv(4.0));
        assert_eq!(l.usage_at(t(0)), ResourceVector::ZERO);
        assert_eq!(l.available(t(0), t(100)), rv(4.0));
        assert!(l.fits(t(0), t(100), rv(4.0)));
        assert!(!l.fits(t(0), t(100), rv(4.1)));
    }

    #[test]
    fn reservation_blocks_window_only() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(10), t(20), rv(3.0));
        assert!(l.fits(t(0), t(10), rv(4.0)), "before the window");
        assert!(l.fits(t(20), t(30), rv(4.0)), "after the window (half-open)");
        assert!(l.fits(t(10), t(20), rv(1.0)));
        assert!(!l.fits(t(10), t(20), rv(1.1)));
        assert!(!l.fits(t(5), t(15), rv(2.0)), "overlap at the front");
        assert!(!l.fits(t(15), t(25), rv(2.0)), "overlap at the back");
    }

    #[test]
    fn overlapping_reservations_accumulate() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(0), t(20), rv(1.5));
        l.reserve(t(10), t(30), rv(1.5));
        assert_eq!(l.usage_at(t(15)), rv(3.0));
        assert_eq!(l.usage_at(t(5)), rv(1.5));
        assert_eq!(l.usage_at(t(25)), rv(1.5));
        assert!(!l.fits(t(12), t(18), rv(1.5)));
        assert!(l.fits(t(12), t(18), rv(1.0)));
    }

    #[test]
    fn unreserve_restores_availability() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(10), t(20), rv(3.0));
        l.unreserve(t(10), t(20), rv(3.0));
        assert!(l.fits(t(10), t(20), rv(4.0)));
        assert_eq!(l.usage_at(t(15)), ResourceVector::ZERO);
    }

    #[test]
    fn consistency_check_passes_through_churn_and_catches_corruption() {
        let mut l = ResourceLedger::new(rv(8.0));
        assert_eq!(l.check_consistency(), Ok(()));
        // Enough churn to exercise inserts, cancellations, and pruning
        // across more than one summary bucket.
        for i in 0..200u64 {
            l.reserve(t(i * 3), t(i * 3 + 10), rv(0.25));
        }
        for i in 0..50u64 {
            l.unreserve(t(i * 3), t(i * 3 + 10), rv(0.25));
        }
        l.prune_before(t(120));
        assert_eq!(l.check_consistency(), Ok(()));
        // Corrupt one cached level; the check must name it.
        let mid = l.prefix.len() / 2;
        l.prefix[mid] += rv(1.0);
        assert!(l.check_consistency().is_err());
    }

    #[test]
    fn peak_usage_sees_interior_spikes() {
        let mut l = ResourceLedger::new(rv(10.0));
        l.reserve(t(10), t(12), rv(8.0)); // short spike inside the window
        let peak = l.peak_usage(t(0), t(100));
        assert_eq!(peak, rv(8.0));
        assert!(!l.fits(t(0), t(100), rv(3.0)));
    }

    #[test]
    fn prune_preserves_future_queries() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(0), t(50), rv(1.0));
        l.reserve(t(10), t(60), rv(2.0));
        let before = l.usage_at(t(40));
        l.prune_before(t(30));
        assert_eq!(l.usage_at(t(40)), before);
        assert_eq!(l.usage_at(t(55)), rv(2.0));
        assert!(l.timeline_len() <= 2);
    }

    #[test]
    fn earliest_fit_finds_gap() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(0), t(30), rv(4.0)); // machine fully busy until 30ms
        let dur = SimDuration::from_millis(10);
        let slot = l.earliest_fit(t(0), t(1000), dur, rv(2.0));
        assert_eq!(slot, Some(t(30)));
        // A window that ends before the gap opens: no slot.
        assert_eq!(l.earliest_fit(t(0), t(30), dur, rv(2.0)), None);
    }

    #[test]
    fn earliest_fit_skips_partial_gaps() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(0), t(10), rv(4.0));
        l.reserve(t(15), t(25), rv(4.0)); // 5ms gap at 10 is too short
        let dur = SimDuration::from_millis(10);
        assert_eq!(l.earliest_fit(t(0), t(1000), dur, rv(1.0)), Some(t(25)));
    }

    #[test]
    fn clear_then_stale_unreserve_is_harmless() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(10), t(20), rv(3.0));
        l.clear();
        assert_eq!(l.timeline_len(), 0);
        // A release for a pre-crash reservation arrives late: availability
        // must stay capped at capacity and slots must still be found sanely.
        l.unreserve(t(10), t(20), rv(3.0));
        assert_eq!(l.available(t(10), t(20)), rv(4.0));
        assert!(!l.fits(t(10), t(20), rv(4.1)));
        let slot = l.earliest_fit(t(0), t(100), SimDuration::from_millis(5), rv(4.0));
        assert_eq!(slot, Some(t(0)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let mut l = ResourceLedger::new(rv(1.0));
        l.reserve(t(5), t(5), rv(1.0));
    }

    #[test]
    fn might_fit_tracks_the_lowest_reachable_level() {
        let mut l = ResourceLedger::new(rv(4.0));
        assert!(l.might_fit(rv(4.0)));
        assert!(!l.might_fit(rv(4.1)), "over-capacity requests are pruned on an empty ledger");
        // A long reservation: the retained future still contains its end
        // breakpoint where the level returns to zero, so headroom stays
        // reachable (might_fit is conservative about *where*, not *whether*).
        l.reserve(t(10), t(1_000_000), rv(3.0));
        assert!(l.might_fit(rv(4.0)), "post-reservation tail keeps full headroom reachable");
        assert!(!l.might_fit(rv(4.1)));
        // Pruning folds the start into the base but keeps the future drop:
        // the hint must not get stuck at the 3.0 floor.
        l.prune_before(t(20));
        assert!(l.might_fit(rv(4.0)));
        assert!(l.earliest_fit(t(0), t(2_000_000), SimDuration::from_millis(1), rv(4.0)).is_some());
    }

    #[test]
    fn might_fit_never_contradicts_earliest_fit() {
        // Build a busy profile crossing several buckets and check the hint
        // against exhaustive earliest_fit probes.
        let mut l = ResourceLedger::new(rv(4.0));
        for i in 0..300u64 {
            l.reserve(t(i * 3), t(i * 3 + 5), rv(0.5 + (i % 5) as f64 * 0.3));
        }
        for amt in [0.5, 1.0, 2.0, 3.5, 4.0, 4.5] {
            let hint = l.might_fit(rv(amt));
            let slot = l.earliest_fit(t(0), t(10_000), SimDuration::from_millis(1), rv(amt));
            if !hint {
                assert!(slot.is_none(), "might_fit=false must imply no slot for {amt}");
            }
        }
    }

    #[test]
    fn long_timelines_cross_bucket_boundaries() {
        // > 2 buckets of points; peaks and fits must see across chunks.
        let mut l = ResourceLedger::new(rv(10.0));
        for i in 0..200u64 {
            l.reserve(t(i * 10), t(i * 10 + 7), rv(1.0));
        }
        l.reserve(t(995), t(1005), rv(8.0)); // spike inside the range
        let peak = l.peak_usage(t(0), t(3000));
        assert_eq!(peak, rv(9.0), "spike (8) over an existing level (1)");
        assert!(!l.fits(t(990), t(1010), rv(1.5)));
        assert!(l.fits(t(2500), t(2505), rv(9.0)));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::ledger_naive::NaiveLedger;
    use mlp_sim::SimDuration;
    use proptest::prelude::*;

    fn rv(c: f64) -> ResourceVector {
        ResourceVector::new(c, c, c)
    }

    proptest! {
        /// Admitting only what `fits` reports can never over-commit:
        /// after any sequence of admission-checked reservations, planned
        /// usage never exceeds capacity at any timeline point.
        #[test]
        fn never_over_commits(reqs in prop::collection::vec(
            (0u64..100, 1u64..50, 0.1f64..3.0), 1..60)) {
            let cap = rv(4.0);
            let mut l = ResourceLedger::new(cap);
            for (start, len, amt) in reqs {
                let from = SimTime::from_millis(start);
                let to = SimTime::from_millis(start + len);
                let amount = rv(amt);
                if l.fits(from, to, amount) {
                    l.reserve(from, to, amount);
                }
            }
            // Check usage at every breakpoint.
            for instant in 0u64..200 {
                let u = l.usage_at(SimTime::from_millis(instant));
                prop_assert!(u.fits_within(&cap), "over-committed at {instant}ms: {u:?}");
            }
        }

        /// earliest_fit's answer actually fits, and no timeline point
        /// earlier than the answer fits.
        #[test]
        fn earliest_fit_is_sound_and_minimal(reqs in prop::collection::vec(
            (0u64..50, 1u64..30, 0.5f64..4.0), 0..20), amt in 0.5f64..3.0, len in 1u64..20) {
            let mut l = ResourceLedger::new(rv(4.0));
            for (start, dur, a) in reqs {
                let from = SimTime::from_millis(start);
                let to = SimTime::from_millis(start + dur);
                if l.fits(from, to, rv(a)) {
                    l.reserve(from, to, rv(a));
                }
            }
            let dur = SimDuration::from_millis(len);
            let horizon = SimTime::from_millis(500);
            if let Some(slot) = l.earliest_fit(SimTime::ZERO, horizon, dur, rv(amt)) {
                prop_assert!(l.fits(slot, slot + dur, rv(amt)));
            }
        }
    }

    /// One random mutation of both ledgers.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Reserve(u64, u64, f64),
        Unreserve(u64, u64, f64),
        Prune(u64),
        Clear,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        // Weighting (mostly reserves, occasional prune/clear) is encoded in
        // the selector ranges: the vendored prop_oneof is unweighted.
        (0u8..13, 0u64..150, 1u64..60, 0.1f64..3.0).prop_map(|(sel, s, l, a)| match sel {
            0..=7 => Op::Reserve(s, l, a),
            8..=10 => Op::Unreserve(s, l, a),
            11 => Op::Prune(s),
            _ => Op::Clear,
        })
    }

    proptest! {
        /// Equivalence oracle: any sequence of reserve / unreserve /
        /// prune / clear leaves the indexed ledger answering every query
        /// *bit-identically* to the naive reference implementation.
        #[test]
        fn matches_naive_reference(
            ops in prop::collection::vec(arb_op(), 0..80),
            probes in prop::collection::vec((0u64..220, 1u64..80, 0.1f64..5.0, 1u64..40), 1..25),
        ) {
            let cap = rv(4.0);
            let mut fast = ResourceLedger::new(cap);
            let mut naive = NaiveLedger::new(cap);
            for op in ops {
                match op {
                    Op::Reserve(s, l, a) => {
                        let (f, t) = (SimTime::from_millis(s), SimTime::from_millis(s + l));
                        fast.reserve(f, t, rv(a));
                        naive.reserve(f, t, rv(a));
                    }
                    Op::Unreserve(s, l, a) => {
                        let (f, t) = (SimTime::from_millis(s), SimTime::from_millis(s + l));
                        fast.unreserve(f, t, rv(a));
                        naive.unreserve(f, t, rv(a));
                    }
                    Op::Prune(at) => {
                        fast.prune_before(SimTime::from_millis(at));
                        naive.prune_before(SimTime::from_millis(at));
                    }
                    Op::Clear => {
                        fast.clear();
                        naive.clear();
                    }
                }
                // The indexed ledger drops breakpoints whose deltas cancel
                // to exactly zero; the naive oracle retains them. It may
                // therefore hold fewer points, never more.
                prop_assert!(fast.timeline_len() <= naive.timeline_len());
            }
            for (start, len, amt, dur) in probes {
                let from = SimTime::from_millis(start);
                let to = SimTime::from_millis(start + len);
                let amount = rv(amt);
                let d = SimDuration::from_millis(dur);
                prop_assert_eq!(fast.usage_at(from), naive.usage_at(from));
                prop_assert_eq!(fast.peak_usage(from, to), naive.peak_usage(from, to));
                prop_assert_eq!(fast.available(from, to), naive.available(from, to));
                prop_assert_eq!(fast.fits(from, to, amount), naive.fits(from, to, amount));
                // Several horizons, including ones inside the busy region.
                for h in [start + 1, start + len, 400] {
                    let horizon = SimTime::from_millis(h);
                    prop_assert_eq!(
                        fast.earliest_fit(from, horizon, d, amount),
                        naive.earliest_fit(from, horizon, d, amount),
                        "earliest_fit(from={start}ms, horizon={h}ms, dur={dur}ms, amt={amt})"
                    );
                }
                // The O(1) hint must never contradict a found slot.
                if !fast.might_fit(amount) {
                    prop_assert_eq!(
                        fast.earliest_fit(from, SimTime::from_millis(400), d, amount),
                        None
                    );
                }
            }
        }
    }
}
