//! Future-resource reservation ledger.
//!
//! Algorithm 1 assigns a microservice to a machine only if, over the whole
//! planned window `[t, t+Δt]`, the machine's remaining resources cover the
//! service's demand (`l_res ≥ u_res`). That requires *looking into the
//! planned future* of each machine, which this ledger provides: a timeline
//! of reservation deltas supporting window-peak queries.

use mlp_model::ResourceVector;
use mlp_sim::SimTime;
use std::collections::BTreeMap;

/// A per-machine timeline of planned resource occupancy.
///
/// Reservations are half-open intervals `[from, to)`. Queries report the
/// component-wise *peak* usage over a window, so a fit check is exact
/// regardless of how reservations overlap.
#[derive(Debug, Clone)]
pub struct ResourceLedger {
    capacity: ResourceVector,
    /// Net usage change at each instant (µs key).
    deltas: BTreeMap<u64, ResourceVector>,
    /// Usage level before the first retained delta (maintained by pruning).
    base: ResourceVector,
}

impl ResourceLedger {
    /// Creates an empty ledger for a machine with the given capacity.
    pub fn new(capacity: ResourceVector) -> Self {
        ResourceLedger { capacity, deltas: BTreeMap::new(), base: ResourceVector::ZERO }
    }

    /// Machine capacity.
    pub fn capacity(&self) -> ResourceVector {
        self.capacity
    }

    /// Adds a reservation of `amount` over `[from, to)`.
    ///
    /// # Panics
    /// Panics if `from >= to` (empty or inverted window).
    pub fn reserve(&mut self, from: SimTime, to: SimTime, amount: ResourceVector) {
        assert!(from < to, "reservation window must be non-empty: {from} .. {to}");
        *self.deltas.entry(from.as_micros()).or_insert(ResourceVector::ZERO) += amount;
        *self.deltas.entry(to.as_micros()).or_insert(ResourceVector::ZERO) -= amount;
    }

    /// Removes a reservation previously added with identical arguments.
    /// (Used when the self-healing module re-plans a late service.)
    pub fn unreserve(&mut self, from: SimTime, to: SimTime, amount: ResourceVector) {
        assert!(from < to, "reservation window must be non-empty");
        *self.deltas.entry(from.as_micros()).or_insert(ResourceVector::ZERO) -= amount;
        *self.deltas.entry(to.as_micros()).or_insert(ResourceVector::ZERO) += amount;
    }

    /// Planned usage at instant `t`.
    pub fn usage_at(&self, t: SimTime) -> ResourceVector {
        let mut usage = self.base;
        for (_, d) in self.deltas.range(..=t.as_micros()) {
            usage += *d;
        }
        usage
    }

    /// Component-wise peak planned usage over `[from, to)`.
    pub fn peak_usage(&self, from: SimTime, to: SimTime) -> ResourceVector {
        let mut usage = self.usage_at(from);
        let mut peak = usage;
        for (_, d) in self.deltas.range(from.as_micros() + 1..to.as_micros()) {
            usage += *d;
            peak = peak.max(&usage);
        }
        peak
    }

    /// Resources guaranteed free over the whole window `[from, to)`.
    ///
    /// Peak usage is clamped at zero before subtracting: after a crash
    /// wipes the ledger, a straggling `unreserve` for a pre-crash window
    /// can leave net-negative deltas, and those must not inflate
    /// availability beyond capacity.
    pub fn available(&self, from: SimTime, to: SimTime) -> ResourceVector {
        (self.capacity - self.peak_usage(from, to).clamp_non_negative()).clamp_non_negative()
    }

    /// Whether `amount` fits on top of existing plans over `[from, to)`.
    pub fn fits(&self, from: SimTime, to: SimTime, amount: ResourceVector) -> bool {
        amount.fits_within(&self.available(from, to))
    }

    /// Forgets every reservation. Used when a machine crashes: the work
    /// planned on it is void, and pre-crash reservations must not shadow
    /// the recovered (empty) machine.
    pub fn clear(&mut self) {
        self.deltas.clear();
        self.base = ResourceVector::ZERO;
    }

    /// Folds all deltas strictly before `t` into the base level, bounding
    /// memory over long runs. Queries for instants `>= t` are unaffected.
    pub fn prune_before(&mut self, t: SimTime) {
        let cut = t.as_micros();
        let keys: Vec<u64> = self.deltas.range(..cut).map(|(&k, _)| k).collect();
        for k in keys {
            let d = self.deltas.remove(&k).unwrap();
            self.base += d;
        }
    }

    /// Number of retained timeline points (diagnostics).
    pub fn timeline_len(&self) -> usize {
        self.deltas.len()
    }

    /// Earliest instant within `[from, horizon)` at which `amount` fits for
    /// a duration of `dur`. Returns `None` when no slot exists before
    /// `horizon`. This powers the "best effort" machine traversal of
    /// Algorithm 1 and the delay-slot search of the self-healing module.
    ///
    /// Single left-to-right sweep over the piecewise-constant usage
    /// profile — O(timeline length) per call, which matters because
    /// admission rounds under load call this for every (request node ×
    /// machine) pair.
    pub fn earliest_fit(
        &self,
        from: SimTime,
        horizon: SimTime,
        dur: mlp_sim::SimDuration,
        amount: ResourceVector,
    ) -> Option<SimTime> {
        if dur.as_micros() == 0 {
            return Some(from);
        }
        if from >= horizon {
            return None;
        }
        let free_needed = amount;
        // Negative net usage (stale unreserve after a crash-time `clear`)
        // counts as zero, never as extra headroom.
        let fits_usage = |usage: &ResourceVector| {
            (free_needed + usage.clamp_non_negative()).fits_within(&self.capacity)
        };

        // Usage level entering `from`.
        let mut usage = self.usage_at(from);
        // `candidate` is the earliest start for which every segment since
        // `candidate` fits.
        let mut candidate = if fits_usage(&usage) { Some(from) } else { None };
        for (&k, d) in self.deltas.range(from.as_micros() + 1..) {
            let t = SimTime::from_micros(k);
            // Did a candidate window complete before this breakpoint?
            if let Some(c) = candidate {
                if t >= c + dur {
                    return Some(c);
                }
            }
            if t >= horizon {
                break;
            }
            usage += *d;
            if fits_usage(&usage) {
                candidate.get_or_insert(t);
            } else {
                candidate = None;
            }
        }
        // Tail: usage is constant beyond the last breakpoint.
        match candidate {
            Some(c) if c < horizon => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_sim::SimDuration;

    fn rv(c: f64) -> ResourceVector {
        ResourceVector::new(c, c * 100.0, c * 10.0)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_ledger_is_fully_available() {
        let l = ResourceLedger::new(rv(4.0));
        assert_eq!(l.usage_at(t(0)), ResourceVector::ZERO);
        assert_eq!(l.available(t(0), t(100)), rv(4.0));
        assert!(l.fits(t(0), t(100), rv(4.0)));
        assert!(!l.fits(t(0), t(100), rv(4.1)));
    }

    #[test]
    fn reservation_blocks_window_only() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(10), t(20), rv(3.0));
        assert!(l.fits(t(0), t(10), rv(4.0)), "before the window");
        assert!(l.fits(t(20), t(30), rv(4.0)), "after the window (half-open)");
        assert!(l.fits(t(10), t(20), rv(1.0)));
        assert!(!l.fits(t(10), t(20), rv(1.1)));
        assert!(!l.fits(t(5), t(15), rv(2.0)), "overlap at the front");
        assert!(!l.fits(t(15), t(25), rv(2.0)), "overlap at the back");
    }

    #[test]
    fn overlapping_reservations_accumulate() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(0), t(20), rv(1.5));
        l.reserve(t(10), t(30), rv(1.5));
        assert_eq!(l.usage_at(t(15)), rv(3.0));
        assert_eq!(l.usage_at(t(5)), rv(1.5));
        assert_eq!(l.usage_at(t(25)), rv(1.5));
        assert!(!l.fits(t(12), t(18), rv(1.5)));
        assert!(l.fits(t(12), t(18), rv(1.0)));
    }

    #[test]
    fn unreserve_restores_availability() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(10), t(20), rv(3.0));
        l.unreserve(t(10), t(20), rv(3.0));
        assert!(l.fits(t(10), t(20), rv(4.0)));
        assert_eq!(l.usage_at(t(15)), ResourceVector::ZERO);
    }

    #[test]
    fn peak_usage_sees_interior_spikes() {
        let mut l = ResourceLedger::new(rv(10.0));
        l.reserve(t(10), t(12), rv(8.0)); // short spike inside the window
        let peak = l.peak_usage(t(0), t(100));
        assert_eq!(peak, rv(8.0));
        assert!(!l.fits(t(0), t(100), rv(3.0)));
    }

    #[test]
    fn prune_preserves_future_queries() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(0), t(50), rv(1.0));
        l.reserve(t(10), t(60), rv(2.0));
        let before = l.usage_at(t(40));
        l.prune_before(t(30));
        assert_eq!(l.usage_at(t(40)), before);
        assert_eq!(l.usage_at(t(55)), rv(2.0));
        assert!(l.timeline_len() <= 2);
    }

    #[test]
    fn earliest_fit_finds_gap() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(0), t(30), rv(4.0)); // machine fully busy until 30ms
        let dur = SimDuration::from_millis(10);
        let slot = l.earliest_fit(t(0), t(1000), dur, rv(2.0));
        assert_eq!(slot, Some(t(30)));
        // A window that ends before the gap opens: no slot.
        assert_eq!(l.earliest_fit(t(0), t(30), dur, rv(2.0)), None);
    }

    #[test]
    fn earliest_fit_skips_partial_gaps() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(0), t(10), rv(4.0));
        l.reserve(t(15), t(25), rv(4.0)); // 5ms gap at 10 is too short
        let dur = SimDuration::from_millis(10);
        assert_eq!(l.earliest_fit(t(0), t(1000), dur, rv(1.0)), Some(t(25)));
    }

    #[test]
    fn clear_then_stale_unreserve_is_harmless() {
        let mut l = ResourceLedger::new(rv(4.0));
        l.reserve(t(10), t(20), rv(3.0));
        l.clear();
        assert_eq!(l.timeline_len(), 0);
        // A release for a pre-crash reservation arrives late: availability
        // must stay capped at capacity and slots must still be found sanely.
        l.unreserve(t(10), t(20), rv(3.0));
        assert_eq!(l.available(t(10), t(20)), rv(4.0));
        assert!(!l.fits(t(10), t(20), rv(4.1)));
        let slot = l.earliest_fit(t(0), t(100), SimDuration::from_millis(5), rv(4.0));
        assert_eq!(slot, Some(t(0)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let mut l = ResourceLedger::new(rv(1.0));
        l.reserve(t(5), t(5), rv(1.0));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use mlp_sim::SimDuration;
    use proptest::prelude::*;

    fn rv(c: f64) -> ResourceVector {
        ResourceVector::new(c, c, c)
    }

    proptest! {
        /// Admitting only what `fits` reports can never over-commit:
        /// after any sequence of admission-checked reservations, planned
        /// usage never exceeds capacity at any timeline point.
        #[test]
        fn never_over_commits(reqs in prop::collection::vec(
            (0u64..100, 1u64..50, 0.1f64..3.0), 1..60)) {
            let cap = rv(4.0);
            let mut l = ResourceLedger::new(cap);
            for (start, len, amt) in reqs {
                let from = SimTime::from_millis(start);
                let to = SimTime::from_millis(start + len);
                let amount = rv(amt);
                if l.fits(from, to, amount) {
                    l.reserve(from, to, amount);
                }
            }
            // Check usage at every breakpoint.
            for instant in 0u64..200 {
                let u = l.usage_at(SimTime::from_millis(instant));
                prop_assert!(u.fits_within(&cap), "over-committed at {instant}ms: {u:?}");
            }
        }

        /// earliest_fit's answer actually fits, and no timeline point
        /// earlier than the answer fits.
        #[test]
        fn earliest_fit_is_sound_and_minimal(reqs in prop::collection::vec(
            (0u64..50, 1u64..30, 0.5f64..4.0), 0..20), amt in 0.5f64..3.0, len in 1u64..20) {
            let mut l = ResourceLedger::new(rv(4.0));
            for (start, dur, a) in reqs {
                let from = SimTime::from_millis(start);
                let to = SimTime::from_millis(start + dur);
                if l.fits(from, to, rv(a)) {
                    l.reserve(from, to, rv(a));
                }
            }
            let dur = SimDuration::from_millis(len);
            let horizon = SimTime::from_millis(500);
            if let Some(slot) = l.earliest_fit(SimTime::ZERO, horizon, dur, rv(amt)) {
                prop_assert!(l.fits(slot, slot + dur, rv(amt)));
            }
        }
    }
}
