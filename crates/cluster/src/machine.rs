//! Machines and the simulated cluster.

use crate::ledger::ResourceLedger;
use crate::shard::{ShardId, ShardMap, ShardPolicy};
use mlp_model::{ResourceKind, ResourceVector};
use mlp_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a machine in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineId(pub u32);

/// Handle to one occupancy grant returned by [`Machine::occupy`].
///
/// Releases are by-handle and idempotent: releasing a grant twice (or a
/// grant wiped by a [`Machine::crash`]) is a no-op, so the engine's
/// failure-recovery paths can never drive `actual_used` negative or leak
/// occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GrantId(u64);

/// One worker node: capacity, a future-reservation plan, and the actual
/// instantaneous usage of services currently executing on it.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Machine id (dense, equals its index in the [`Cluster`]).
    pub id: MachineId,
    /// Total resources of this node.
    pub capacity: ResourceVector,
    /// Planned (future) occupancy — what schedulers consult.
    pub ledger: ResourceLedger,
    /// What is *actually* in use right now (running services).
    actual_used: ResourceVector,
    /// Live grants by id; `actual_used` is always their sum.
    grants: BTreeMap<u64, ResourceVector>,
    next_grant: u64,
    /// Whether the machine is alive (fault injection crashes machines).
    up: bool,
}

impl Machine {
    /// Creates an idle machine.
    pub fn new(id: MachineId, capacity: ResourceVector) -> Self {
        Machine {
            id,
            capacity,
            ledger: ResourceLedger::new(capacity),
            actual_used: ResourceVector::ZERO,
            grants: BTreeMap::new(),
            next_grant: 0,
            up: true,
        }
    }

    /// Resources not actually in use right now.
    pub fn actual_free(&self) -> ResourceVector {
        (self.capacity - self.actual_used).clamp_non_negative()
    }

    /// What is actually in use right now.
    pub fn actual_used(&self) -> ResourceVector {
        self.actual_used
    }

    /// Number of services currently executing.
    pub fn running(&self) -> usize {
        self.grants.len()
    }

    /// Amount held by a live grant (`None` once released or crash-wiped).
    /// Introspection for the invariant auditor: the engine's view of a
    /// running node's occupancy must match the machine's.
    pub fn grant_amount(&self, grant: GrantId) -> Option<ResourceVector> {
        self.grants.get(&grant.0).copied()
    }

    /// Sum of all live grants. By construction this always equals
    /// [`actual_used`](Machine::actual_used) up to float rounding — the
    /// invariant auditor cross-checks the two independently.
    pub fn grants_total(&self) -> ResourceVector {
        self.grants.values().fold(ResourceVector::ZERO, |acc, &g| acc + g)
    }

    /// Occupancy snapshot: `(grants in flight, total granted, actual
    /// used, actual free)` — one consistent view for observability layers.
    pub fn occupancy(&self) -> (usize, ResourceVector, ResourceVector, ResourceVector) {
        (self.grants.len(), self.grants_total(), self.actual_used, self.actual_free())
    }

    /// Whether the machine is alive.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Marks `demand` as actually occupied (service invocation) and hands
    /// back the grant to release on completion.
    #[must_use = "the grant handle is required to release the occupancy"]
    pub fn occupy(&mut self, demand: ResourceVector) -> GrantId {
        let id = GrantId(self.next_grant);
        self.next_grant += 1;
        self.grants.insert(id.0, demand);
        self.actual_used += demand;
        id
    }

    /// Releases a grant on service completion. Idempotent: returns `false`
    /// (and changes nothing) when the grant was already released or wiped
    /// by a crash.
    pub fn release(&mut self, grant: GrantId) -> bool {
        match self.grants.remove(&grant.0) {
            Some(amount) => {
                self.actual_used = (self.actual_used - amount).clamp_non_negative();
                true
            }
            None => false,
        }
    }

    /// Enlarges a live grant by `extra` (resource stretch). Returns `false`
    /// when the grant no longer exists (completed or wiped by a crash).
    pub fn grow(&mut self, grant: GrantId, extra: ResourceVector) -> bool {
        match self.grants.get_mut(&grant.0) {
            Some(amount) => {
                *amount += extra;
                self.actual_used += extra;
                true
            }
            None => false,
        }
    }

    /// Crashes the machine: every running service is killed, its actual
    /// usage vanishes, and its planned future (the ledger) is void. The
    /// machine stays in the cluster but reports `is_up() == false` until
    /// [`recover`](Machine::recover).
    pub fn crash(&mut self) {
        self.up = false;
        self.grants.clear();
        self.actual_used = ResourceVector::ZERO;
        self.ledger.clear();
    }

    /// Brings a crashed machine back, empty.
    pub fn recover(&mut self) {
        self.up = true;
    }

    /// Instantaneous utilization of this node:
    /// `(u_cpu + u_mem + u_io) / 3` against capacity (Section V-B).
    pub fn utilization(&self) -> f64 {
        self.actual_used.utilization_against(&self.capacity)
    }

    /// Current load fraction of one resource kind.
    pub fn load(&self, kind: ResourceKind) -> f64 {
        let cap = self.capacity.get(kind);
        if cap <= 0.0 {
            0.0
        } else {
            (self.actual_used.get(kind) / cap).clamp(0.0, 1.0)
        }
    }
}

/// The simulated cluster: a pool of machines (the paper's evaluation uses
/// 100 nodes, Section V-B) partitioned into one or more scheduling shards.
///
/// Every constructor starts with a single shard holding all machines —
/// the unsharded behaviour the paper evaluates. Production-scale runs call
/// [`with_shards`](Cluster::with_shards) to split the fleet so placement
/// and healing scan one shard instead of the whole pool.
#[derive(Debug, Clone)]
pub struct Cluster {
    machines: Vec<Machine>,
    shards: ShardMap,
}

impl Cluster {
    /// Builds `n` identical machines of the given capacity.
    pub fn homogeneous(n: usize, capacity: ResourceVector) -> Self {
        let machines: Vec<Machine> =
            (0..n).map(|i| Machine::new(MachineId(i as u32), capacity)).collect();
        let shards = ShardMap::single(&machines);
        Cluster { machines, shards }
    }

    /// The paper's simulated cluster: 100 nodes. Per-node capacity is a
    /// simulation parameter the paper does not state; it is calibrated so
    /// that the 1000 req/s peak of Fig 9 drives the cluster into the
    /// 40–90 % utilization regime of Fig 11 (see EXPERIMENTS.md §calibration).
    pub fn paper_default() -> Self {
        Cluster::homogeneous(100, ResourceVector::new(2.4, 2_500.0, 350.0))
    }

    /// Builds a heterogeneous cluster from explicit per-machine
    /// capacities (an extension beyond the paper's homogeneous setup —
    /// real fleets mix generations; schedulers that reserve against
    /// per-machine ledgers handle this transparently, while capacity-
    /// oblivious ones like FairSched mis-size their slices).
    pub fn heterogeneous(capacities: Vec<ResourceVector>) -> Self {
        let machines: Vec<Machine> = capacities
            .into_iter()
            .enumerate()
            .map(|(i, c)| Machine::new(MachineId(i as u32), c))
            .collect();
        let shards = ShardMap::single(&machines);
        Cluster { machines, shards }
    }

    /// A two-tier fleet: `n_big` machines at `big` capacity and `n_small`
    /// at `small` capacity (the common old-generation/new-generation mix).
    pub fn two_tier(
        n_big: usize,
        big: ResourceVector,
        n_small: usize,
        small: ResourceVector,
    ) -> Self {
        let mut caps = vec![big; n_big];
        caps.extend(std::iter::repeat_n(small, n_small));
        Cluster::heterogeneous(caps)
    }

    /// Re-partitions the cluster into `k` shards under `policy`. `k` is
    /// clamped to the machine count (no empty shards); `k = 1` restores
    /// the unsharded default. Builder-style so constructors chain:
    /// `Cluster::homogeneous(256, cap).with_shards(16, ShardPolicy::RoundRobin)`.
    pub fn with_shards(mut self, k: usize, policy: ShardPolicy) -> Self {
        self.shards = ShardMap::build(&self.machines, k, policy);
        self
    }

    /// The shard partition.
    pub fn shards(&self) -> &ShardMap {
        &self.shards
    }

    /// Number of shards (1 unless [`with_shards`](Cluster::with_shards)
    /// was applied).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard of a machine.
    pub fn shard_of(&self, machine: MachineId) -> ShardId {
        self.shards.shard_of(machine)
    }

    /// Member machines of a shard, ascending id.
    pub fn shard_members(&self, shard: ShardId) -> &[MachineId] {
        self.shards.members(shard)
    }

    /// Deterministic home shard for a request id.
    pub fn home_shard(&self, request_id: u64) -> ShardId {
        self.shards.home_shard(request_id)
    }

    /// Shards in scan order for a request homed at `home`: home first,
    /// then cross-shard overflow in ascending rotation.
    pub fn shard_scan_order(&self, home: ShardId) -> impl Iterator<Item = ShardId> + '_ {
        self.shards.scan_order(home)
    }

    /// Member machines of a shard as an iterator over `&Machine`, in the
    /// shard's scan order (ascending id). With one shard this visits the
    /// whole cluster in exactly the order [`machines`](Cluster::machines)
    /// does, which is what keeps `shards = 1` byte-identical to the
    /// unsharded code path.
    pub fn shard_machines(&self, shard: ShardId) -> impl Iterator<Item = &Machine> + '_ {
        self.shards.members(shard).iter().map(|&id| &self.machines[id.0 as usize])
    }

    /// Aggregate capacity of a shard.
    pub fn shard_capacity(&self, shard: ShardId) -> ResourceVector {
        self.shards.capacity(shard)
    }

    /// Mean instantaneous utilization across a shard's members (the
    /// per-shard analogue of [`utilization`](Cluster::utilization), for
    /// per-shard metrics gauges).
    pub fn shard_utilization(&self, shard: ShardId) -> f64 {
        let members = self.shards.members(shard);
        if members.is_empty() {
            return 0.0;
        }
        members.iter().map(|&id| self.machines[id.0 as usize].utilization()).sum::<f64>()
            / members.len() as f64
    }

    /// Total capacity across all machines.
    pub fn total_capacity(&self) -> ResourceVector {
        self.machines.iter().fold(ResourceVector::ZERO, |acc, m| acc + m.capacity)
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Machine by id.
    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.machines[id.0 as usize]
    }

    /// Mutable machine by id.
    pub fn machine_mut(&mut self, id: MachineId) -> &mut Machine {
        &mut self.machines[id.0 as usize]
    }

    /// Iterates over all machines.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Mutable iteration.
    pub fn machines_mut(&mut self) -> &mut [Machine] {
        &mut self.machines
    }

    /// Splits the fleet into per-shard sets of mutable machine references:
    /// entry `s` holds shard `s`'s members in ascending machine id — the
    /// same order [`shard_machines`](Cluster::shard_machines) scans. The
    /// sets are disjoint (the shard map is a strict partition), so each
    /// can be handed to a different shard worker for a tick's placement,
    /// pruning, or audit work without any aliasing.
    pub fn machines_by_shard_mut(&mut self) -> Vec<Vec<&mut Machine>> {
        let mut out: Vec<Vec<&mut Machine>> = Vec::with_capacity(self.shards.len());
        out.resize_with(self.shards.len(), Vec::new);
        let shards = &self.shards;
        for m in self.machines.iter_mut() {
            out[shards.shard_of(m.id).0 as usize].push(m);
        }
        out
    }

    /// Like [`machines_by_shard_mut`](Cluster::machines_by_shard_mut) but
    /// restricted to the shards flagged in `wanted` (indexed by shard),
    /// returned as `(shard_index, members)` pairs in ascending shard
    /// order. An admission round typically queues work for a handful of
    /// shards; collecting references for all `K` of them every round is
    /// O(machines) of allocation the round never uses. Members keep the
    /// same ascending-machine-id order as the unfiltered accessor.
    pub fn machines_in_shards_mut(&mut self, wanted: &[bool]) -> Vec<(usize, Vec<&mut Machine>)> {
        debug_assert_eq!(wanted.len(), self.shards.len());
        let hits = wanted.iter().filter(|&&w| w).count();
        let mut out: Vec<(usize, Vec<&mut Machine>)> = Vec::with_capacity(hits);
        let shards = &self.shards;
        for m in self.machines.iter_mut() {
            let s = shards.shard_of(m.id).0 as usize;
            if !wanted[s] {
                continue;
            }
            match out.iter_mut().find(|(idx, _)| *idx == s) {
                Some((_, members)) => members.push(m),
                None => out.push((s, vec![m])),
            }
        }
        out.sort_by_key(|(idx, _)| *idx);
        out
    }

    /// Cluster-wide utilization `U = Σ_nodes (u_cpu + u_mem + u_io) /
    /// (#resource_types · #nodes)` — the efficiency metric of Fig 11.
    pub fn utilization(&self) -> f64 {
        if self.machines.is_empty() {
            return 0.0;
        }
        self.machines.iter().map(Machine::utilization).sum::<f64>() / self.machines.len() as f64
    }

    /// Compacts every machine's ledger below `t`.
    pub fn prune_ledgers_before(&mut self, t: SimTime) {
        for m in &mut self.machines {
            m.ledger.prune_before(t);
        }
    }

    /// Id of the live machine with the lowest instantaneous utilization
    /// (CurSched's placement rule). Crashed machines are skipped.
    ///
    /// `total_cmp` plus an explicit id tie-break: a NaN utilization (e.g. a
    /// degenerate zero-capacity machine) must not panic the scheduler, and
    /// ties must resolve to the lowest id regardless of iteration quirks —
    /// the same convention as shard-level scans.
    pub fn least_loaded(&self) -> Option<MachineId> {
        self.machines
            .iter()
            .filter(|m| m.is_up())
            .min_by(|a, b| a.utilization().total_cmp(&b.utilization()).then(a.id.cmp(&b.id)))
            .map(|m| m.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(c: f64, m: f64, i: f64) -> ResourceVector {
        ResourceVector::new(c, m, i)
    }

    #[test]
    fn occupy_release_roundtrip() {
        let mut m = Machine::new(MachineId(0), rv(4.0, 1000.0, 100.0));
        let d = rv(1.0, 250.0, 25.0);
        let g = m.occupy(d);
        assert_eq!(m.running(), 1);
        assert!((m.utilization() - 0.25).abs() < 1e-12);
        assert!(m.release(g));
        assert_eq!(m.running(), 0);
        assert_eq!(m.actual_used(), ResourceVector::ZERO);
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    fn double_release_is_a_noop() {
        let mut m = Machine::new(MachineId(0), rv(4.0, 1000.0, 100.0));
        let a = m.occupy(rv(1.0, 100.0, 10.0));
        let b = m.occupy(rv(2.0, 200.0, 20.0));
        assert!(m.release(a));
        assert!(!m.release(a), "second release must be rejected");
        // The other grant is untouched by the double release.
        assert_eq!(m.actual_used(), rv(2.0, 200.0, 20.0));
        assert_eq!(m.running(), 1);
        assert!(m.release(b));
        assert!(!m.actual_used().has_negative());
        assert_eq!(m.actual_used(), ResourceVector::ZERO);
    }

    #[test]
    fn grow_enlarges_grant_and_release_returns_all_of_it() {
        let mut m = Machine::new(MachineId(0), rv(4.0, 1000.0, 100.0));
        let g = m.occupy(rv(1.0, 100.0, 10.0));
        assert!(m.grow(g, rv(0.5, 50.0, 5.0)));
        assert_eq!(m.actual_used(), rv(1.5, 150.0, 15.0));
        assert!(m.release(g));
        assert_eq!(m.actual_used(), ResourceVector::ZERO);
        // Growing a released grant does nothing.
        assert!(!m.grow(g, rv(1.0, 1.0, 1.0)));
        assert_eq!(m.actual_used(), ResourceVector::ZERO);
    }

    #[test]
    fn occupancy_introspection_matches_grants() {
        let mut m = Machine::new(MachineId(0), rv(4.0, 1000.0, 100.0));
        let a = m.occupy(rv(1.0, 100.0, 10.0));
        let b = m.occupy(rv(0.5, 50.0, 5.0));
        assert_eq!(m.grant_amount(a), Some(rv(1.0, 100.0, 10.0)));
        assert_eq!(m.grants_total(), rv(1.5, 150.0, 15.0));
        assert_eq!(m.grants_total(), m.actual_used());
        let (n, granted, used, free) = m.occupancy();
        assert_eq!(n, 2);
        assert_eq!(granted, used);
        assert_eq!(free, rv(2.5, 850.0, 85.0));
        assert!(m.release(a));
        assert_eq!(m.grant_amount(a), None, "released grant is gone");
        assert!(m.grow(b, rv(0.5, 0.0, 0.0)));
        assert_eq!(m.grant_amount(b), Some(rv(1.0, 50.0, 5.0)));
        assert_eq!(m.grants_total(), m.actual_used());
    }

    #[test]
    fn crash_wipes_grants_and_release_after_crash_is_safe() {
        let mut m = Machine::new(MachineId(0), rv(4.0, 1000.0, 100.0));
        let g = m.occupy(rv(2.0, 500.0, 50.0));
        m.ledger.reserve(SimTime::ZERO, SimTime::from_secs(1), rv(1.0, 100.0, 10.0));
        m.crash();
        assert!(!m.is_up());
        assert_eq!(m.running(), 0);
        assert_eq!(m.actual_used(), ResourceVector::ZERO);
        assert_eq!(m.ledger.timeline_len(), 0, "crash voids the planned future");
        // The dangling grant from before the crash is dead.
        assert!(!m.release(g));
        assert_eq!(m.actual_used(), ResourceVector::ZERO);
        m.recover();
        assert!(m.is_up());
    }

    #[test]
    fn cluster_utilization_is_average() {
        let mut c = Cluster::homogeneous(2, rv(4.0, 1000.0, 100.0));
        let _ = c.machine_mut(MachineId(0)).occupy(rv(4.0, 1000.0, 100.0)); // 100%
        assert!((c.utilization() - 0.5).abs() < 1e-12); // other idle
    }

    #[test]
    fn paper_default_shape() {
        let c = Cluster::paper_default();
        assert_eq!(c.len(), 100);
        assert_eq!(c.machine(MachineId(99)).capacity.cpu, 2.4);
    }

    #[test]
    fn least_loaded_prefers_idle() {
        let mut c = Cluster::homogeneous(3, rv(4.0, 1000.0, 100.0));
        let _ = c.machine_mut(MachineId(0)).occupy(rv(2.0, 0.0, 0.0));
        let _ = c.machine_mut(MachineId(2)).occupy(rv(1.0, 0.0, 0.0));
        assert_eq!(c.least_loaded(), Some(MachineId(1)));
    }

    /// Regression: this scan once compared with `partial_cmp().unwrap()`,
    /// which panicked the first time a utilization came out NaN (poisoned
    /// occupancy accounting). `total_cmp` ranks NaN above every real
    /// utilization, so the scan must skip the poisoned machine and resolve
    /// the remaining zero-utilization tie to the lowest id.
    #[test]
    fn least_loaded_survives_nan_utilization() {
        let mut c = Cluster::homogeneous(3, rv(4.0, 1000.0, 100.0));
        c.machine_mut(MachineId(0)).actual_used = rv(f64::NAN, 0.0, 0.0);
        assert!(c.machine(MachineId(0)).utilization().is_nan(), "fixture must poison m0");
        assert_eq!(c.least_loaded(), Some(MachineId(1)));
    }

    #[test]
    fn least_loaded_skips_crashed_machines() {
        let mut c = Cluster::homogeneous(2, rv(4.0, 1000.0, 100.0));
        let _ = c.machine_mut(MachineId(1)).occupy(rv(3.0, 0.0, 0.0));
        c.machine_mut(MachineId(0)).crash();
        assert_eq!(c.least_loaded(), Some(MachineId(1)), "idle machine is down");
        c.machine_mut(MachineId(0)).recover();
        assert_eq!(c.least_loaded(), Some(MachineId(0)));
    }

    #[test]
    fn load_per_kind() {
        let mut m = Machine::new(MachineId(0), rv(4.0, 1000.0, 100.0));
        let _ = m.occupy(rv(1.0, 500.0, 0.0));
        assert!((m.load(ResourceKind::Cpu) - 0.25).abs() < 1e-12);
        assert!((m.load(ResourceKind::Memory) - 0.5).abs() < 1e-12);
        assert_eq!(m.load(ResourceKind::Io), 0.0);
    }

    #[test]
    fn heterogeneous_cluster_keeps_per_machine_capacity() {
        let c = Cluster::two_tier(2, rv(8.0, 2000.0, 200.0), 3, rv(2.0, 500.0, 50.0));
        assert_eq!(c.len(), 5);
        assert_eq!(c.machine(MachineId(0)).capacity.cpu, 8.0);
        assert_eq!(c.machine(MachineId(4)).capacity.cpu, 2.0);
        let total = c.total_capacity();
        assert_eq!(total.cpu, 2.0 * 8.0 + 3.0 * 2.0);
        // Ledgers are sized per machine, not per fleet.
        assert_eq!(c.machine(MachineId(4)).ledger.capacity().cpu, 2.0);
    }

    #[test]
    fn utilization_weighs_machines_equally() {
        // U averages per-node utilization (paper formula), so a saturated
        // small machine counts as much as a saturated big one.
        let mut c = Cluster::two_tier(1, rv(8.0, 800.0, 80.0), 1, rv(2.0, 200.0, 20.0));
        let _ = c.machine_mut(MachineId(1)).occupy(rv(2.0, 200.0, 20.0));
        assert!((c.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clusters_default_to_one_shard_in_machine_order() {
        let c = Cluster::two_tier(1, rv(8.0, 2000.0, 200.0), 2, rv(2.0, 500.0, 50.0));
        assert_eq!(c.shard_count(), 1);
        assert_eq!(c.shard_members(ShardId(0)), &[MachineId(0), MachineId(1), MachineId(2)]);
        let scanned: Vec<MachineId> = c.shard_machines(ShardId(0)).map(|m| m.id).collect();
        let direct: Vec<MachineId> = c.machines().iter().map(|m| m.id).collect();
        assert_eq!(scanned, direct, "single-shard scan must match whole-cluster order");
        assert_eq!(c.shard_capacity(ShardId(0)), c.total_capacity());
        assert_eq!(c.home_shard(12345), ShardId(0));
    }

    #[test]
    fn with_shards_partitions_and_aggregates() {
        let mut c =
            Cluster::homogeneous(8, rv(4.0, 1000.0, 100.0)).with_shards(4, ShardPolicy::RoundRobin);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.shard_members(ShardId(1)), &[MachineId(1), MachineId(5)]);
        assert_eq!(c.shard_capacity(ShardId(1)), rv(8.0, 2000.0, 200.0));
        assert_eq!(c.shard_of(MachineId(6)), ShardId(2));
        // Per-shard utilization only sees that shard's members.
        let _ = c.machine_mut(MachineId(1)).occupy(rv(4.0, 1000.0, 100.0));
        assert!((c.shard_utilization(ShardId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(c.shard_utilization(ShardId(0)), 0.0);
        assert!(c.shards().check_partition(c.machines()).is_ok());
    }

    #[test]
    fn shard_scan_order_starts_at_home() {
        let c =
            Cluster::homogeneous(9, rv(4.0, 1000.0, 100.0)).with_shards(3, ShardPolicy::RoundRobin);
        let home = c.home_shard(7); // 7 % 3 == 1
        assert_eq!(home, ShardId(1));
        let order: Vec<u32> = c.shard_scan_order(home).map(|s| s.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn empty_cluster_utilization() {
        let c = Cluster::homogeneous(0, rv(1.0, 1.0, 1.0));
        assert_eq!(c.utilization(), 0.0);
        assert_eq!(c.least_loaded(), None);
    }
}
