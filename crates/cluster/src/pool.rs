//! The shard worker pool: deterministic fan-out for per-shard tick work.
//!
//! Shards are the unit of isolation (home-shard placement, per-shard
//! ledgers and gauges, the auditor's partition check), which makes the
//! per-tick shard work — placement scans, ledger pruning, gauge
//! collection, consistency audits — embarrassingly parallel *within* a
//! tick. The pool runs one job per shard and returns results **in job
//! index order**, so callers that buffer per-shard effects and apply them
//! in shard-index order observe the same outcome at any worker count.
//!
//! Determinism contract: `scatter` only promises index-ordered results.
//! Bit-reproducibility across worker counts therefore holds exactly when
//! the jobs touch disjoint state (each job owns its shard's machines and
//! buffers its side effects) — which is how every caller in this
//! workspace uses it, and what `tests/shard_equivalence.rs` proves
//! end-to-end.
//!
//! `workers == 1` is pure inline execution on the calling thread — no
//! threads, no channels — so a single-worker run is not merely
//! *equivalent* to the sequential code, it **is** the sequential code.
//! For `workers > 1` the fan-out grows the `run_all` idiom from
//! `mlp-engine`: scoped threads pull job indices from a shared counter
//! and send `(index, result)` pairs over a channel. Scoped threads make
//! borrowed job closures sound without `unsafe`: the scope joins every
//! worker before `scatter` returns, so borrows of shard machine slices
//! cannot outlive the call.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic fan-out executor for per-shard jobs.
#[derive(Debug, Clone)]
pub struct ShardPool {
    workers: usize,
}

impl ShardPool {
    /// A pool that runs up to `workers` jobs concurrently. `0` means "all
    /// available cores"; `1` (the default everywhere) executes inline.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            workers
        };
        ShardPool { workers }
    }

    /// The configured concurrency.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job (each receives its own index) and returns the
    /// results in job index order, regardless of completion order.
    pub fn scatter<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce(usize) -> T + Send,
    {
        if self.workers <= 1 || jobs.len() <= 1 {
            return jobs.into_iter().enumerate().map(|(i, job)| job(i)).collect();
        }
        let n = jobs.len();
        let workers = self.workers.min(n);
        // FnOnce must be *moved* to run; park each job behind a Mutex slot
        // so any worker can claim it by take().
        let slots: Vec<std::sync::Mutex<Option<F>>> =
            jobs.into_iter().map(|j| std::sync::Mutex::new(Some(j))).collect();
        let next = AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let slots = &slots;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i].lock().expect("job slot").take().expect("claimed once");
                    tx.send((i, job(i))).expect("collector outlives the scope");
                });
            }
        });
        drop(tx); // workers joined by the scope; close our own sender

        let mut out: Vec<Option<T>> = Vec::new();
        out.resize_with(n, || None);
        for (i, result) in rx {
            out[i] = Some(result);
        }
        out.into_iter().map(|r| r.expect("every job produces a result")).collect()
    }
}

impl Default for ShardPool {
    /// Inline execution (one worker).
    fn default() -> Self {
        ShardPool::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 8] {
            let pool = ShardPool::new(workers);
            let jobs: Vec<_> = (0..17)
                .map(|i| {
                    move |idx: usize| {
                        assert_eq!(i, idx);
                        idx * 10
                    }
                })
                .collect();
            let out = pool.scatter(jobs);
            assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn borrowed_mutable_state_is_seen_after_scatter() {
        let mut shards: Vec<Vec<u64>> = vec![vec![0; 4]; 8];
        let pool = ShardPool::new(4);
        let jobs: Vec<_> = shards
            .iter_mut()
            .map(|shard| {
                move |idx: usize| {
                    for (j, v) in shard.iter_mut().enumerate() {
                        *v = (idx * 100 + j) as u64;
                    }
                    shard.iter().sum::<u64>()
                }
            })
            .collect();
        let sums = pool.scatter(jobs);
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(shard[3], (i * 100 + 3) as u64);
            assert_eq!(sums[i], shard.iter().sum::<u64>());
        }
    }

    #[test]
    fn zero_workers_resolves_to_available_cores() {
        assert!(ShardPool::new(0).workers() >= 1);
    }

    #[test]
    fn empty_and_single_job_lists() {
        let pool = ShardPool::new(8);
        let out: Vec<u32> = pool.scatter(Vec::<fn(usize) -> u32>::new());
        assert!(out.is_empty());
        let out = pool.scatter(vec![|i: usize| i + 41]);
        assert_eq!(out, vec![41]);
    }
}
