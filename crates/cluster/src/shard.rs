//! Cluster sharding: partition the machine pool into K shards so the
//! scheduling hot paths (placement, healing, crash re-planning) scan one
//! shard instead of the whole fleet.
//!
//! The paper evaluates on 8 machines; Alibaba-scale clusters run
//! thousands. A single global placement loop is O(machines) *per DAG
//! node*, which at 1024 machines dominates the scheduling round. The
//! shard map fixes the asymptotics without changing semantics:
//!
//! - every machine belongs to exactly one shard (a strict partition,
//!   cross-checked by the engine's invariant auditor);
//! - each request gets a deterministic *home shard* (`request id mod K`),
//!   so repeated runs shard identically;
//! - placement scans the home shard first and *overflows* to the other
//!   shards in rotation order only when the home shard has no feasible
//!   window (work-stealing for requests whose home shard is saturated);
//! - `K = 1` (the default everywhere) degenerates to a single shard whose
//!   member order is exactly the old whole-cluster scan order, so
//!   unsharded runs are byte-identical to the pre-shard code.

use crate::machine::{Machine, MachineId};
use mlp_model::ResourceVector;
use serde::{Deserialize, Serialize};

/// Identifier of a shard (dense, `0..ShardMap::len()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ShardId(pub u32);

/// How machines are partitioned into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// Machine `i` goes to shard `i mod K`. With a homogeneous fleet this
    /// is also capacity-balanced, and it keeps shard membership stable as
    /// clusters grow (machine ids are dense).
    RoundRobin,
    /// Greedy balance on total capacity share: machines are taken largest
    /// first and each goes to the currently lightest shard. Heterogeneous
    /// fleets (two-tier old/new generations) get shards of near-equal
    /// aggregate capacity instead of near-equal machine count.
    CapacityBalanced,
}

impl Default for ShardPolicy {
    /// Round-robin: capacity-neutral on homogeneous fleets and stable as
    /// the cluster grows.
    fn default() -> Self {
        ShardPolicy::RoundRobin
    }
}

/// The machine → shard partition plus its inverse, with per-shard
/// aggregate capacity maintained for scheduling heuristics and metrics.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Shard of each machine, indexed by dense machine id.
    shard_of: Vec<ShardId>,
    /// Members of each shard, ascending machine id — scan order within a
    /// shard matches the old whole-cluster ascending-id scan.
    members: Vec<Vec<MachineId>>,
    /// Aggregate capacity per shard (sum of member capacities).
    capacity: Vec<ResourceVector>,
    policy: ShardPolicy,
}

/// A machine's capacity as a dimensionless share of the cluster total:
/// the mean of its per-kind fractions. Used only to balance shards, so
/// any monotone scalarization works; this one is unit-free and treats the
/// three resource kinds symmetrically.
fn capacity_share(m: &ResourceVector, total: &ResourceVector) -> f64 {
    let frac = |c: f64, t: f64| if t > 0.0 { c / t } else { 0.0 };
    (frac(m.cpu, total.cpu) + frac(m.mem, total.mem) + frac(m.io, total.io)) / 3.0
}

impl ShardMap {
    /// Partitions `machines` into `k` shards under `policy`. `k` is
    /// clamped to `[1, machines.len().max(1)]` — more shards than
    /// machines would leave empty shards with no scheduling value.
    pub fn build(machines: &[Machine], k: usize, policy: ShardPolicy) -> Self {
        let k = k.clamp(1, machines.len().max(1));
        let mut shard_of = vec![ShardId(0); machines.len()];
        let mut members: Vec<Vec<MachineId>> = vec![Vec::new(); k];
        let mut capacity = vec![ResourceVector::ZERO; k];

        match policy {
            ShardPolicy::RoundRobin => {
                for (i, m) in machines.iter().enumerate() {
                    let s = i % k;
                    shard_of[i] = ShardId(s as u32);
                    capacity[s] += m.capacity;
                }
            }
            ShardPolicy::CapacityBalanced => {
                let total = machines.iter().fold(ResourceVector::ZERO, |acc, m| acc + m.capacity);
                // Largest machine first; ties break on ascending id so the
                // partition is deterministic.
                let mut order: Vec<usize> = (0..machines.len()).collect();
                order.sort_by(|&a, &b| {
                    let (sa, sb) = (
                        capacity_share(&machines[a].capacity, &total),
                        capacity_share(&machines[b].capacity, &total),
                    );
                    sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
                });
                let mut load = vec![0.0f64; k];
                for i in order {
                    // Lightest shard wins; ties break on the lowest shard id.
                    let s = (0..k)
                        .min_by(|&a, &b| {
                            load[a]
                                .partial_cmp(&load[b])
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.cmp(&b))
                        })
                        .expect("k >= 1");
                    shard_of[i] = ShardId(s as u32);
                    load[s] += capacity_share(&machines[i].capacity, &total);
                    capacity[s] += machines[i].capacity;
                }
            }
        }
        for (i, &s) in shard_of.iter().enumerate() {
            members[s.0 as usize].push(MachineId(i as u32));
        }
        ShardMap { shard_of, members, capacity, policy }
    }

    /// A single shard holding every machine — the unsharded default.
    pub fn single(machines: &[Machine]) -> Self {
        Self::build(machines, 1, ShardPolicy::RoundRobin)
    }

    /// Number of shards (≥ 1 whenever the cluster is non-empty).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the map has no shards (empty cluster).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The partition policy this map was built with.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Shard of a machine.
    pub fn shard_of(&self, machine: MachineId) -> ShardId {
        self.shard_of[machine.0 as usize]
    }

    /// Members of a shard, ascending machine id.
    pub fn members(&self, shard: ShardId) -> &[MachineId] {
        &self.members[shard.0 as usize]
    }

    /// Aggregate capacity of a shard.
    pub fn capacity(&self, shard: ShardId) -> ResourceVector {
        self.capacity[shard.0 as usize]
    }

    /// Deterministic home shard for a request id: `id mod K`. Stable
    /// across runs and independent of cluster state, so placement is
    /// reproducible.
    pub fn home_shard(&self, request_id: u64) -> ShardId {
        ShardId((request_id % self.members.len().max(1) as u64) as u32)
    }

    /// Shard ids in scan order for a request homed at `home`: the home
    /// shard first, then the others in ascending rotation (`home+1, …`,
    /// wrapping). Placement takes the first shard that yields a feasible
    /// window — the tail of the iterator is the cross-shard overflow path.
    pub fn scan_order(&self, home: ShardId) -> impl Iterator<Item = ShardId> + '_ {
        let k = self.members.len();
        (0..k).map(move |i| ShardId(((home.0 as usize + i) % k) as u32))
    }

    /// Structural self-check for the invariant auditor: every machine in
    /// exactly one shard, member lists consistent with `shard_of`,
    /// ascending and duplicate-free, and aggregate capacities equal to the
    /// sum of their members'. Returns the first problem found.
    pub fn check_partition(&self, machines: &[Machine]) -> Result<(), String> {
        if self.shard_of.len() != machines.len() {
            return Err(format!(
                "shard map covers {} machines but the cluster has {}",
                self.shard_of.len(),
                machines.len()
            ));
        }
        let member_count: usize = self.members.iter().map(Vec::len).sum();
        if member_count != machines.len() {
            return Err(format!(
                "shard members sum to {member_count} machines, cluster has {}",
                machines.len()
            ));
        }
        for (s, members) in self.members.iter().enumerate() {
            let mut cap = ResourceVector::ZERO;
            let mut prev: Option<MachineId> = None;
            for &mid in members {
                if self.shard_of.get(mid.0 as usize) != Some(&ShardId(s as u32)) {
                    return Err(format!(
                        "machine {mid:?} listed in shard {s} but mapped elsewhere"
                    ));
                }
                if prev.is_some_and(|p| p >= mid) {
                    return Err(format!("shard {s} member list not strictly ascending at {mid:?}"));
                }
                prev = Some(mid);
                cap += machines[mid.0 as usize].capacity;
            }
            let agg = self.capacity[s];
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
            if !(close(cap.cpu, agg.cpu) && close(cap.mem, agg.mem) && close(cap.io, agg.io)) {
                return Err(format!("shard {s} aggregate capacity {agg:?} != member sum {cap:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn fleet(caps: &[(f64, f64, f64)]) -> Vec<Machine> {
        caps.iter()
            .enumerate()
            .map(|(i, &(c, m, io))| {
                Machine::new(MachineId(i as u32), ResourceVector::new(c, m, io))
            })
            .collect()
    }

    fn homogeneous(n: usize) -> Vec<Machine> {
        fleet(&vec![(4.0, 1000.0, 100.0); n])
    }

    #[test]
    fn single_shard_holds_all_machines_in_id_order() {
        let ms = homogeneous(5);
        let map = ShardMap::single(&ms);
        assert_eq!(map.len(), 1);
        assert_eq!(
            map.members(ShardId(0)),
            &[MachineId(0), MachineId(1), MachineId(2), MachineId(3), MachineId(4)]
        );
        assert!(map.check_partition(&ms).is_ok());
    }

    #[test]
    fn round_robin_partitions_evenly() {
        let ms = homogeneous(10);
        let map = ShardMap::build(&ms, 3, ShardPolicy::RoundRobin);
        assert_eq!(map.len(), 3);
        assert_eq!(map.members(ShardId(0)).len(), 4); // 0,3,6,9
        assert_eq!(map.members(ShardId(1)).len(), 3);
        assert_eq!(map.members(ShardId(2)).len(), 3);
        assert_eq!(map.shard_of(MachineId(4)), ShardId(1));
        assert!(map.check_partition(&ms).is_ok());
    }

    #[test]
    fn capacity_balanced_evens_out_heterogeneous_fleets() {
        // Two big machines (at even ids, so round-robin lumps them into
        // one shard) and four small ones into two shards: capacity
        // balancing should put one big in each shard.
        let ms = fleet(&[
            (8.0, 2000.0, 200.0),
            (2.0, 500.0, 50.0),
            (8.0, 2000.0, 200.0),
            (2.0, 500.0, 50.0),
            (2.0, 500.0, 50.0),
            (2.0, 500.0, 50.0),
        ]);
        let map = ShardMap::build(&ms, 2, ShardPolicy::CapacityBalanced);
        let c0 = map.capacity(ShardId(0));
        let c1 = map.capacity(ShardId(1));
        assert!((c0.cpu - c1.cpu).abs() < 1e-9, "cpu split {} vs {}", c0.cpu, c1.cpu);
        assert!(map.check_partition(&ms).is_ok());
        // The round-robin split of the same fleet is lopsided (ids 0 and 2
        // and 4 together), which is exactly what the policy exists to fix.
        let rr = ShardMap::build(&ms, 2, ShardPolicy::RoundRobin);
        assert!((rr.capacity(ShardId(0)).cpu - rr.capacity(ShardId(1)).cpu).abs() > 1.0);
    }

    #[test]
    fn shard_count_clamped_to_machines() {
        let ms = homogeneous(3);
        let map = ShardMap::build(&ms, 10, ShardPolicy::RoundRobin);
        assert_eq!(map.len(), 3, "no empty shards");
        let map = ShardMap::build(&ms, 0, ShardPolicy::RoundRobin);
        assert_eq!(map.len(), 1, "zero clamps to one shard");
    }

    #[test]
    fn home_shard_is_deterministic_and_in_range() {
        let ms = homogeneous(8);
        let map = ShardMap::build(&ms, 4, ShardPolicy::RoundRobin);
        for id in 0..100u64 {
            let h = map.home_shard(id);
            assert!((h.0 as usize) < map.len());
            assert_eq!(h, map.home_shard(id), "stable");
        }
        assert_eq!(map.home_shard(6), ShardId(2));
    }

    #[test]
    fn scan_order_rotates_from_home() {
        let ms = homogeneous(8);
        let map = ShardMap::build(&ms, 4, ShardPolicy::RoundRobin);
        let order: Vec<u32> = map.scan_order(ShardId(2)).map(|s| s.0).collect();
        assert_eq!(order, vec![2, 3, 0, 1]);
    }

    #[test]
    fn check_partition_catches_mismatched_cluster() {
        let ms = homogeneous(4);
        let map = ShardMap::build(&ms, 2, ShardPolicy::RoundRobin);
        let bigger = homogeneous(5);
        assert!(map.check_partition(&bigger).is_err());
    }
}
