//! dockerstats-like usage monitors (Table III's left column).

use mlp_model::{ResourceKind, ResourceVector};
use mlp_sim::SimTime;
use mlp_stats::Summary;
use serde::{Deserialize, Serialize};

/// The monitoring tool per resource kind (Table III: all three resources
/// are observed through `dockerstats` in the paper's deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorTool;

impl MonitorTool {
    /// Display name matching the paper's table.
    pub fn name(self, _kind: ResourceKind) -> &'static str {
        "dockerstats"
    }
}

/// A per-container usage monitor: periodic samples of the resource vector
/// a container consumes, with streaming summaries per kind.
///
/// The interface layer feeds these samples into the self-organizing
/// module's historical profile (Section III-D: "The information collected
/// is … stored as historical traces for future scheduling").
#[derive(Debug, Clone, Default)]
pub struct UsageMonitor {
    cpu: Summary,
    mem: Summary,
    io: Summary,
    last_sample_at: Option<SimTime>,
}

impl UsageMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        UsageMonitor::default()
    }

    /// Records one usage sample at time `t`.
    pub fn sample(&mut self, t: SimTime, usage: ResourceVector) {
        self.cpu.record(usage.cpu);
        self.mem.record(usage.mem);
        self.io.record(usage.io);
        self.last_sample_at = Some(t);
    }

    /// Number of samples taken.
    pub fn samples(&self) -> u64 {
        self.cpu.count()
    }

    /// Time of the most recent sample.
    pub fn last_sample_at(&self) -> Option<SimTime> {
        self.last_sample_at
    }

    /// Streaming summary for one resource kind.
    pub fn summary(&self, kind: ResourceKind) -> &Summary {
        match kind {
            ResourceKind::Cpu => &self.cpu,
            ResourceKind::Memory => &self.mem,
            ResourceKind::Io => &self.io,
        }
    }

    /// Mean observed usage vector.
    pub fn mean_usage(&self) -> ResourceVector {
        ResourceVector::new(self.cpu.mean(), self.mem.mean(), self.io.mean())
    }

    /// Peak observed usage vector.
    pub fn peak_usage(&self) -> ResourceVector {
        if self.samples() == 0 {
            return ResourceVector::ZERO;
        }
        ResourceVector::new(self.cpu.max(), self.mem.max(), self.io.max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(c: f64, m: f64, i: f64) -> ResourceVector {
        ResourceVector::new(c, m, i)
    }

    #[test]
    fn monitor_tool_name() {
        for kind in ResourceKind::ALL {
            assert_eq!(MonitorTool.name(kind), "dockerstats");
        }
    }

    #[test]
    fn empty_monitor() {
        let m = UsageMonitor::new();
        assert_eq!(m.samples(), 0);
        assert_eq!(m.mean_usage(), ResourceVector::ZERO);
        assert_eq!(m.peak_usage(), ResourceVector::ZERO);
        assert!(m.last_sample_at().is_none());
    }

    #[test]
    fn sampling_accumulates() {
        let mut m = UsageMonitor::new();
        m.sample(SimTime::from_millis(1), rv(1.0, 100.0, 10.0));
        m.sample(SimTime::from_millis(2), rv(3.0, 300.0, 30.0));
        assert_eq!(m.samples(), 2);
        assert_eq!(m.mean_usage(), rv(2.0, 200.0, 20.0));
        assert_eq!(m.peak_usage(), rv(3.0, 300.0, 30.0));
        assert_eq!(m.last_sample_at(), Some(SimTime::from_millis(2)));
        assert_eq!(m.summary(ResourceKind::Cpu).max(), 3.0);
    }
}
