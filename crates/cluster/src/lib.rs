//! # mlp-cluster — simulated machine substrate
//!
//! The stand-in for the paper's docker-swarm cluster (DESIGN.md §2). Each
//! [`Machine`] has a CPU/memory/IO capacity vector, a *future-reservation
//! ledger* (the "real-time data … which contains future resource status"
//! that Algorithm 1's machine-traversal consults), an actual-usage account,
//! and cgroups-like [`controller`]s plus dockerstats-like [`monitor`]s
//! (Table III).

pub mod controller;
pub mod ledger;
pub mod ledger_naive;
pub mod machine;
pub mod monitor;
pub mod pool;
pub mod shard;

pub use controller::{proportional_satisfaction, ControllerTool};
pub use ledger::ResourceLedger;
pub use ledger_naive::NaiveLedger;
pub use machine::{Cluster, GrantId, Machine, MachineId};
pub use monitor::{MonitorTool, UsageMonitor};
pub use pool::ShardPool;
pub use shard::{ShardId, ShardMap, ShardPolicy};
