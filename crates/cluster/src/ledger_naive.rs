//! Reference (naive) resource ledger — the pre-index implementation.
//!
//! [`NaiveLedger`] is the original `BTreeMap`-of-deltas ledger whose every
//! query rescans the timeline from `base`. It is kept verbatim as the
//! *behavioral oracle* for the indexed [`ResourceLedger`](crate::ResourceLedger):
//! property tests drive both with identical operation sequences and demand
//! bit-identical answers, and the `perf_baseline` runner times the two
//! side-by-side so the committed `BENCH_sim.json` records the speedup.
//!
//! Do not use this in scheduling paths; it exists only for verification
//! and benchmarking.

use mlp_model::ResourceVector;
use mlp_sim::SimTime;
use std::collections::BTreeMap;

/// The original O(timeline) ledger: a `BTreeMap` of usage deltas, scanned
/// in full on every query.
#[derive(Debug, Clone)]
pub struct NaiveLedger {
    capacity: ResourceVector,
    /// Net usage change at each instant (µs key).
    deltas: BTreeMap<u64, ResourceVector>,
    /// Usage level before the first retained delta (maintained by pruning).
    base: ResourceVector,
}

impl NaiveLedger {
    /// Creates an empty ledger for a machine with the given capacity.
    pub fn new(capacity: ResourceVector) -> Self {
        NaiveLedger { capacity, deltas: BTreeMap::new(), base: ResourceVector::ZERO }
    }

    /// Machine capacity.
    pub fn capacity(&self) -> ResourceVector {
        self.capacity
    }

    /// Adds a reservation of `amount` over `[from, to)`.
    pub fn reserve(&mut self, from: SimTime, to: SimTime, amount: ResourceVector) {
        assert!(from < to, "reservation window must be non-empty: {from} .. {to}");
        *self.deltas.entry(from.as_micros()).or_insert(ResourceVector::ZERO) += amount;
        *self.deltas.entry(to.as_micros()).or_insert(ResourceVector::ZERO) -= amount;
    }

    /// Removes a reservation previously added with identical arguments.
    pub fn unreserve(&mut self, from: SimTime, to: SimTime, amount: ResourceVector) {
        assert!(from < to, "reservation window must be non-empty");
        *self.deltas.entry(from.as_micros()).or_insert(ResourceVector::ZERO) -= amount;
        *self.deltas.entry(to.as_micros()).or_insert(ResourceVector::ZERO) += amount;
    }

    /// Planned usage at instant `t`: a full scan over the retained deltas.
    pub fn usage_at(&self, t: SimTime) -> ResourceVector {
        let mut usage = self.base;
        for (_, d) in self.deltas.range(..=t.as_micros()) {
            usage += *d;
        }
        usage
    }

    /// Component-wise peak planned usage over `[from, to)`.
    pub fn peak_usage(&self, from: SimTime, to: SimTime) -> ResourceVector {
        let mut usage = self.usage_at(from);
        let mut peak = usage;
        for (_, d) in self.deltas.range(from.as_micros() + 1..to.as_micros()) {
            usage += *d;
            peak = peak.max(&usage);
        }
        peak
    }

    /// Resources guaranteed free over the whole window `[from, to)`.
    pub fn available(&self, from: SimTime, to: SimTime) -> ResourceVector {
        (self.capacity - self.peak_usage(from, to).clamp_non_negative()).clamp_non_negative()
    }

    /// Whether `amount` fits on top of existing plans over `[from, to)`.
    pub fn fits(&self, from: SimTime, to: SimTime, amount: ResourceVector) -> bool {
        amount.fits_within(&self.available(from, to))
    }

    /// Forgets every reservation (machine crash).
    pub fn clear(&mut self) {
        self.deltas.clear();
        self.base = ResourceVector::ZERO;
    }

    /// Folds all deltas strictly before `t` into the base level.
    pub fn prune_before(&mut self, t: SimTime) {
        let cut = t.as_micros();
        let keys: Vec<u64> = self.deltas.range(..cut).map(|(&k, _)| k).collect();
        for k in keys {
            let d = self.deltas.remove(&k).unwrap();
            self.base += d;
        }
    }

    /// Number of retained timeline points.
    pub fn timeline_len(&self) -> usize {
        self.deltas.len()
    }

    /// Earliest instant within `[from, horizon)` at which `amount` fits for
    /// a duration of `dur` — a single left-to-right sweep over the
    /// piecewise-constant usage profile, O(timeline length) per call.
    pub fn earliest_fit(
        &self,
        from: SimTime,
        horizon: SimTime,
        dur: mlp_sim::SimDuration,
        amount: ResourceVector,
    ) -> Option<SimTime> {
        if dur.as_micros() == 0 {
            return Some(from);
        }
        if from >= horizon {
            return None;
        }
        let free_needed = amount;
        // Negative net usage (stale unreserve after a crash-time `clear`)
        // counts as zero, never as extra headroom.
        let fits_usage = |usage: &ResourceVector| {
            (free_needed + usage.clamp_non_negative()).fits_within(&self.capacity)
        };

        // Usage level entering `from`.
        let mut usage = self.usage_at(from);
        // `candidate` is the earliest start for which every segment since
        // `candidate` fits.
        let mut candidate = if fits_usage(&usage) { Some(from) } else { None };
        for (&k, d) in self.deltas.range(from.as_micros() + 1..) {
            let t = SimTime::from_micros(k);
            // Did a candidate window complete before this breakpoint?
            if let Some(c) = candidate {
                if t >= c + dur {
                    return Some(c);
                }
            }
            if t >= horizon {
                break;
            }
            usage += *d;
            if fits_usage(&usage) {
                candidate.get_or_insert(t);
            } else {
                candidate = None;
            }
        }
        // Tail: usage is constant beyond the last breakpoint.
        match candidate {
            Some(c) if c < horizon => Some(c),
            _ => None,
        }
    }
}
