//! cgroups-like resource controllers (Table III).
//!
//! The real system caps a container's CPU via `cgroups cpuset`, memory via
//! `memory.limit_in_bytes`, and IO via `net_cls`. In the simulation, the
//! controller's observable effect is the *satisfaction fraction* each
//! running service receives, which the sensitivity model of
//! [`mlp_model::ResourceSensitivity`] turns into an execution-time penalty.

use mlp_model::{ResourceKind, ResourceVector};
use serde::{Deserialize, Serialize};

/// The control knob used per resource kind (Table III's right column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControllerTool {
    /// `cgroups cpuset` — CPU core pinning/sharing.
    CgroupsCpuset,
    /// `cgroups memory.limit_in_bytes` — memory cap.
    CgroupsMemoryLimit,
    /// `cgroups net_cls` — IO/network bandwidth class.
    CgroupsNetCls,
}

impl ControllerTool {
    /// The controller used for a resource kind, per Table III.
    pub fn for_kind(kind: ResourceKind) -> ControllerTool {
        match kind {
            ResourceKind::Cpu => ControllerTool::CgroupsCpuset,
            ResourceKind::Memory => ControllerTool::CgroupsMemoryLimit,
            ResourceKind::Io => ControllerTool::CgroupsNetCls,
        }
    }

    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            ControllerTool::CgroupsCpuset => "cgroups cpuset",
            ControllerTool::CgroupsMemoryLimit => "cgroups memory.limit_in_bytes",
            ControllerTool::CgroupsNetCls => "cgroups net_cls",
        }
    }
}

/// Proportional-share satisfaction fractions for a set of co-located
/// demands against a machine capacity.
///
/// When total demand exceeds capacity on some resource, every occupant's
/// grant on that resource is scaled by `capacity / total_demand`; a
/// service's overall satisfaction `f` is its worst per-resource grant
/// ratio. With no contention every `f = 1`. This models the default
/// work-conserving behaviour of cgroups shares when the scheduler has
/// over-committed a node (the paper's Fig 5 scenario).
pub fn proportional_satisfaction(demands: &[ResourceVector], capacity: ResourceVector) -> Vec<f64> {
    if demands.is_empty() {
        return Vec::new();
    }
    let mut total = ResourceVector::ZERO;
    for d in demands {
        total += *d;
    }
    // Per-kind scale factor (≤ 1 when over-committed).
    let mut scale = [1.0f64; 3];
    for (i, kind) in ResourceKind::ALL.iter().enumerate() {
        let t = total.get(*kind);
        let c = capacity.get(*kind);
        if t > c && t > 0.0 {
            scale[i] = (c / t).max(0.0);
        }
    }
    demands
        .iter()
        .map(|d| {
            let mut f = 1.0f64;
            for (i, kind) in ResourceKind::ALL.iter().enumerate() {
                if d.get(*kind) > 0.0 {
                    f = f.min(scale[i]);
                }
            }
            f
        })
        .collect()
}

/// A per-container cap (the self-healing module's *resource stretch* writes
/// new caps through this). `None` means uncapped (demand-limited).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ContainerCaps {
    /// Optional cap per resource; effective grant = min(demand·stretch, cap).
    pub limit: Option<ResourceVector>,
    /// Multiplier on the nominal demand the container may consume
    /// (stretch > 1 lets an executing service soak up idle resources and
    /// finish sooner; Section III-F).
    pub stretch: f64,
}

impl ContainerCaps {
    /// Uncapped, unstretched.
    pub fn unrestricted() -> Self {
        ContainerCaps { limit: None, stretch: 1.0 }
    }

    /// Effective resource grant for a service with `demand`.
    pub fn effective_grant(&self, demand: ResourceVector) -> ResourceVector {
        let stretched = demand * self.stretch.max(0.0);
        match self.limit {
            Some(cap) => stretched.min(&cap),
            None => stretched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(c: f64, m: f64, i: f64) -> ResourceVector {
        ResourceVector::new(c, m, i)
    }

    #[test]
    fn table3_mapping() {
        assert_eq!(ControllerTool::for_kind(ResourceKind::Cpu).name(), "cgroups cpuset");
        assert_eq!(
            ControllerTool::for_kind(ResourceKind::Memory).name(),
            "cgroups memory.limit_in_bytes"
        );
        assert_eq!(ControllerTool::for_kind(ResourceKind::Io).name(), "cgroups net_cls");
    }

    #[test]
    fn no_contention_full_satisfaction() {
        let cap = rv(4.0, 1000.0, 100.0);
        let demands = vec![rv(1.0, 100.0, 10.0), rv(2.0, 200.0, 20.0)];
        let f = proportional_satisfaction(&demands, cap);
        assert_eq!(f, vec![1.0, 1.0]);
    }

    #[test]
    fn cpu_contention_scales_cpu_users() {
        let cap = rv(4.0, 1000.0, 100.0);
        // 8 cores demanded on a 4-core box: scale 0.5.
        let demands = vec![rv(4.0, 100.0, 0.0), rv(4.0, 100.0, 0.0), rv(0.0, 100.0, 10.0)];
        let f = proportional_satisfaction(&demands, cap);
        assert_eq!(f[0], 0.5);
        assert_eq!(f[1], 0.5);
        // The IO-only service doesn't touch CPU and stays unaffected.
        assert_eq!(f[2], 1.0);
    }

    #[test]
    fn worst_resource_dominates() {
        let cap = rv(4.0, 1000.0, 100.0);
        // CPU 2x over, IO 4x over: services using both get f = 0.25.
        let demands = vec![rv(8.0, 0.0, 400.0)];
        let f = proportional_satisfaction(&demands, cap);
        assert_eq!(f[0], 0.25);
    }

    #[test]
    fn empty_demands() {
        assert!(proportional_satisfaction(&[], rv(1.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn caps_clamp_and_stretch() {
        let demand = rv(1.0, 100.0, 10.0);
        let un = ContainerCaps::unrestricted();
        assert_eq!(un.effective_grant(demand), demand);

        let stretched = ContainerCaps { limit: None, stretch: 1.5 };
        assert_eq!(stretched.effective_grant(demand), demand * 1.5);

        let capped = ContainerCaps { limit: Some(rv(0.5, 1000.0, 1000.0)), stretch: 2.0 };
        let g = capped.effective_grant(demand);
        assert_eq!(g.cpu, 0.5); // limited
        assert_eq!(g.mem, 200.0); // stretched
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_demand() -> impl Strategy<Value = ResourceVector> {
        (0.0f64..8.0, 0.0f64..2000.0, 0.0f64..200.0)
            .prop_map(|(c, m, i)| ResourceVector::new(c, m, i))
    }

    proptest! {
        /// Granted resources (demand · f) never exceed capacity in total.
        #[test]
        fn grants_respect_capacity(demands in prop::collection::vec(arb_demand(), 1..10)) {
            let cap = ResourceVector::new(4.0, 1000.0, 100.0);
            let fs = proportional_satisfaction(&demands, cap);
            let mut granted = ResourceVector::ZERO;
            for (d, f) in demands.iter().zip(&fs) {
                prop_assert!((0.0..=1.0).contains(f));
                granted += *d * *f;
            }
            // Per-kind: granted ≤ capacity (+ epsilon).
            prop_assert!(granted.cpu <= cap.cpu + 1e-6);
            prop_assert!(granted.mem <= cap.mem + 1e-6);
            prop_assert!(granted.io <= cap.io + 1e-6);
        }
    }
}
