//! Compiled fault schedules: concrete machine outages and windowed
//! failure/degradation rates, derived deterministically from
//! `(FaultConfig, machine_count, seed)`.

use crate::{hash_unit, splitmix64, FaultConfig};
use mlp_cluster::MachineId;
use mlp_sim::time::SimTime;

/// One machine crash/recover window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineOutage {
    /// The machine that crashes.
    pub machine: MachineId,
    /// Crash instant.
    pub down_at: SimTime,
    /// Recovery instant (machine rejoins empty).
    pub up_at: SimTime,
}

/// A fully materialized fault plan for one simulation run.
///
/// The schedule is immutable; the engine reads outages up front (to
/// schedule crash/recover events) and queries the windowed rates as the
/// run progresses.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    active: bool,
    transient_fail_prob: f64,
    /// Window in which transient failures apply; `None` = whole run.
    transient_window: Option<(SimTime, SimTime)>,
    outages: Vec<MachineOutage>,
    degrade_window: (SimTime, SimTime),
    degrade_factor: f64,
}

impl FaultSchedule {
    /// An empty schedule (faults disabled).
    pub fn empty() -> Self {
        FaultSchedule {
            seed: 0,
            active: false,
            transient_fail_prob: 0.0,
            transient_window: None,
            outages: Vec::new(),
            degrade_window: (SimTime::ZERO, SimTime::ZERO),
            degrade_factor: 1.0,
        }
    }

    /// Compiles `config` for a cluster of `machine_count` machines.
    ///
    /// Crash windows are spread evenly across the storm window with
    /// hash-derived jitter, and crash victims are distinct machines (the
    /// crash count is capped at `machine_count - 1` so the cluster always
    /// keeps at least one machine up).
    pub fn compile(config: &FaultConfig, machine_count: usize, seed: u64) -> Self {
        if !config.is_active() || machine_count == 0 {
            return FaultSchedule::empty();
        }

        let storm_start = SimTime::from_millis(config.storm_start_ms);
        let storm_end = SimTime::from_millis(config.storm_start_ms + config.storm_duration_ms);

        let crash_budget = (config.machine_crashes as usize).min(machine_count.saturating_sub(1));
        let mut outages = Vec::with_capacity(crash_budget);
        if crash_budget > 0 {
            // Distinct victims via a seeded partial Fisher-Yates over the
            // machine index space.
            let mut victims: Vec<usize> = (0..machine_count).collect();
            for i in 0..crash_budget {
                let h = splitmix64(seed ^ 0xc4a5_0000 ^ i as u64);
                let j = i + (h as usize % (machine_count - i));
                victims.swap(i, j);
            }
            let span_us = storm_end.as_micros().saturating_sub(storm_start.as_micros());
            let slot_us = span_us / crash_budget as u64;
            for (i, &victim) in victims.iter().take(crash_budget).enumerate() {
                let jitter = if slot_us > 0 {
                    (hash_unit(splitmix64(seed ^ 0x717e_0000 ^ i as u64)) * slot_us as f64) as u64
                } else {
                    0
                };
                let down_at =
                    SimTime::from_micros(storm_start.as_micros() + slot_us * i as u64 + jitter);
                let up_at = down_at + mlp_sim::time::SimDuration::from_millis(config.outage_ms);
                outages.push(MachineOutage { machine: MachineId(victim as u32), down_at, up_at });
            }
            outages.sort_by_key(|o| (o.down_at, o.machine.0));
        }

        let transient_window =
            if config.storm_duration_ms > 0 { Some((storm_start, storm_end)) } else { None };

        let degrade_window = (
            SimTime::from_millis(config.degrade_start_ms),
            SimTime::from_millis(config.degrade_start_ms + config.degrade_duration_ms),
        );

        FaultSchedule {
            seed,
            active: true,
            transient_fail_prob: config.transient_fail_prob.clamp(0.0, 1.0),
            transient_window,
            outages,
            degrade_window,
            degrade_factor: config.degrade_factor.max(0.0),
        }
    }

    /// The seed all deterministic per-attempt decisions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this schedule can affect a run at all.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// All machine outages, sorted by crash time.
    pub fn outages(&self) -> &[MachineOutage] {
        &self.outages
    }

    /// Whether `machine` is inside one of its crash windows at `t`.
    pub fn is_down(&self, machine: MachineId, t: SimTime) -> bool {
        self.outages.iter().any(|o| o.machine == machine && o.down_at <= t && t < o.up_at)
    }

    /// When `machine` next recovers, if it is down at `t`.
    pub fn next_recovery(&self, machine: MachineId, t: SimTime) -> Option<SimTime> {
        self.outages
            .iter()
            .find(|o| o.machine == machine && o.down_at <= t && t < o.up_at)
            .map(|o| o.up_at)
    }

    /// The transient-failure probability in effect at `t`.
    pub fn transient_fail_prob_at(&self, t: SimTime) -> f64 {
        if !self.active {
            return 0.0;
        }
        match self.transient_window {
            Some((start, end)) if t < start || t >= end => 0.0,
            _ => self.transient_fail_prob,
        }
    }

    /// The network-degradation multiplier at `t` (1.0 = unaffected).
    pub fn degradation_at(&self, t: SimTime) -> f64 {
        let (start, end) = self.degrade_window;
        if self.active && start <= t && t < end {
            self.degrade_factor
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm() -> FaultConfig {
        FaultConfig::storm()
    }

    #[test]
    fn empty_schedule_is_inert() {
        let s = FaultSchedule::empty();
        assert!(!s.is_active());
        assert!(s.outages().is_empty());
        assert!(!s.is_down(MachineId(0), SimTime::from_millis(10_000)));
        assert_eq!(s.degradation_at(SimTime::from_millis(10_000)), 1.0);
        assert_eq!(s.transient_fail_prob_at(SimTime::from_millis(10_000)), 0.0);
    }

    #[test]
    fn compile_is_deterministic() {
        let a = FaultSchedule::compile(&storm(), 16, 99);
        let b = FaultSchedule::compile(&storm(), 16, 99);
        assert_eq!(a.outages(), b.outages());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultSchedule::compile(&storm(), 16, 1);
        let b = FaultSchedule::compile(&storm(), 16, 2);
        assert_ne!(a.outages(), b.outages());
    }

    #[test]
    fn victims_are_distinct_and_in_range() {
        let s = FaultSchedule::compile(&storm(), 16, 5);
        let mut seen = std::collections::HashSet::new();
        for o in s.outages() {
            assert!((o.machine.0 as usize) < 16);
            assert!(seen.insert(o.machine), "machine crashed twice: {:?}", o.machine);
            assert!(o.down_at < o.up_at);
        }
        assert_eq!(s.outages().len(), 3);
    }

    #[test]
    fn crash_count_capped_below_cluster_size() {
        let cfg = FaultConfig { machine_crashes: 10, ..storm() };
        let s = FaultSchedule::compile(&cfg, 4, 5);
        assert_eq!(s.outages().len(), 3, "must keep at least one machine up");
    }

    #[test]
    fn outage_windows_answer_is_down() {
        let s = FaultSchedule::compile(&storm(), 16, 5);
        let o = s.outages()[0];
        assert!(
            !s.is_down(o.machine, o.down_at.saturating_sub(mlp_sim::SimDuration::from_micros(1)))
        );
        assert!(s.is_down(o.machine, o.down_at));
        assert!(s.is_down(
            o.machine,
            o.down_at
                + mlp_sim::SimDuration::from_micros(
                    (o.up_at.as_micros() - o.down_at.as_micros()) / 2
                )
        ));
        assert!(!s.is_down(o.machine, o.up_at));
        assert_eq!(s.next_recovery(o.machine, o.down_at), Some(o.up_at));
        assert_eq!(s.next_recovery(o.machine, o.up_at), None);
    }

    #[test]
    fn windows_scope_transients_and_degradation() {
        let s = FaultSchedule::compile(&storm(), 16, 5);
        // Before the storm: clean.
        assert_eq!(s.transient_fail_prob_at(SimTime::from_millis(1_000)), 0.0);
        assert_eq!(s.degradation_at(SimTime::from_millis(1_000)), 1.0);
        // Inside the windows.
        assert!(s.transient_fail_prob_at(SimTime::from_millis(9_000)) > 0.0);
        assert!(s.degradation_at(SimTime::from_millis(11_000)) > 1.0);
        // Long after: clean again.
        assert_eq!(s.transient_fail_prob_at(SimTime::from_millis(60_000)), 0.0);
        assert_eq!(s.degradation_at(SimTime::from_millis(60_000)), 1.0);
    }

    #[test]
    fn single_machine_cluster_never_crashes() {
        let s = FaultSchedule::compile(&storm(), 1, 5);
        assert!(s.outages().is_empty());
    }
}
