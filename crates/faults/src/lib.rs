//! # mlp-faults — deterministic fault injection
//!
//! Compiles an [`ExperimentConfig`]-level fault description
//! ([`FaultConfig`]) into a concrete, seeded [`FaultSchedule`]: machine
//! crash/recover windows, per-(request, node, attempt) transient execution
//! failures, and a network-degradation window that scales the tail-spike
//! parameters of the network model.
//!
//! Everything here is a pure function of `(config, machine_count, seed)`.
//! The engine consults the schedule at well-defined points (span start,
//! machine selection) so two runs with the same seed inject byte-identical
//! fault sequences regardless of scheduler behaviour. With
//! `FaultConfig::disabled()` (the default) the schedule is empty and the
//! engine's event stream is untouched.

use mlp_sim::time::SimTime;
use mlp_trace::span::RequestId;
use serde::{Deserialize, Serialize};

pub mod schedule;

pub use schedule::{FaultSchedule, MachineOutage};

/// Declarative fault model, embedded in the experiment configuration.
///
/// All times are milliseconds on the simulation clock. The config is
/// `Copy` (like `ExperimentConfig`) and fully serializable so fault
/// scenarios replay from JSON.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultConfig {
    /// Master switch. `false` compiles to an empty schedule and leaves
    /// every simulation byte-identical to a fault-free run.
    pub enabled: bool,
    /// Number of machine crash windows injected inside the storm window.
    pub machine_crashes: u32,
    /// Start of the fault storm (crashes and degradation begin here).
    pub storm_start_ms: u64,
    /// Length of the window in which crashes are scattered.
    pub storm_duration_ms: u64,
    /// How long each crashed machine stays down before recovering.
    pub outage_ms: u64,
    /// Probability that one execution attempt of a DAG node fails
    /// transiently (decided per `(request, node, attempt)`).
    pub transient_fail_prob: f64,
    /// Network degradation window start (0 disables when duration is 0).
    pub degrade_start_ms: u64,
    /// Network degradation window length.
    pub degrade_duration_ms: u64,
    /// Multiplier applied to the network spike probability and magnitude
    /// while the degradation window is active (1.0 = no effect).
    pub degrade_factor: f64,
}

/// Hand-written so configs predating (or omitting) the fault model keep
/// loading: a missing `faults` object and missing individual fields both
/// fall back to [`FaultConfig::disabled`]'s values.
impl Deserialize for FaultConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let d = Self::disabled();
        fn field<T: Deserialize>(
            v: &serde::Value,
            name: &str,
            fallback: T,
        ) -> Result<T, serde::Error> {
            match v.get(name) {
                Some(x) => Deserialize::from_value(x)
                    .map_err(|e| e.in_context(&format!("FaultConfig.{name}"))),
                None => Ok(fallback),
            }
        }
        Ok(FaultConfig {
            enabled: field(v, "enabled", d.enabled)?,
            machine_crashes: field(v, "machine_crashes", d.machine_crashes)?,
            storm_start_ms: field(v, "storm_start_ms", d.storm_start_ms)?,
            storm_duration_ms: field(v, "storm_duration_ms", d.storm_duration_ms)?,
            outage_ms: field(v, "outage_ms", d.outage_ms)?,
            transient_fail_prob: field(v, "transient_fail_prob", d.transient_fail_prob)?,
            degrade_start_ms: field(v, "degrade_start_ms", d.degrade_start_ms)?,
            degrade_duration_ms: field(v, "degrade_duration_ms", d.degrade_duration_ms)?,
            degrade_factor: field(v, "degrade_factor", d.degrade_factor)?,
        })
    }

    fn absent(_field: &str) -> Result<Self, serde::Error> {
        Ok(Self::disabled())
    }
}

impl FaultConfig {
    /// No faults at all — the default for every existing experiment.
    pub fn disabled() -> Self {
        FaultConfig {
            enabled: false,
            machine_crashes: 0,
            storm_start_ms: 0,
            storm_duration_ms: 0,
            outage_ms: 0,
            transient_fail_prob: 0.0,
            degrade_start_ms: 0,
            degrade_duration_ms: 0,
            degrade_factor: 1.0,
        }
    }

    /// The "fault storm" used by the fig_faults scenario: a burst of
    /// machine crashes mid-run, elevated transient failures, and a
    /// network-degradation window overlapping the crashes.
    pub fn storm() -> Self {
        FaultConfig {
            enabled: true,
            machine_crashes: 3,
            storm_start_ms: 8_000,
            storm_duration_ms: 10_000,
            outage_ms: 4_000,
            transient_fail_prob: 0.02,
            degrade_start_ms: 10_000,
            degrade_duration_ms: 8_000,
            degrade_factor: 4.0,
        }
    }

    /// True when the config can affect a simulation in any way.
    pub fn is_active(&self) -> bool {
        self.enabled
            && (self.machine_crashes > 0
                || self.transient_fail_prob > 0.0
                || (self.degrade_duration_ms > 0 && self.degrade_factor != 1.0))
    }

    /// Compiles this config into a concrete schedule for a cluster of
    /// `machine_count` machines, deterministically from `seed`.
    pub fn compile(&self, machine_count: usize, seed: u64) -> FaultSchedule {
        FaultSchedule::compile(self, machine_count, seed)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

/// SplitMix64 — the same mixing function `mlp-sim` uses for RNG forking;
/// used here to derive independent per-decision hash streams.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform f64 in [0, 1).
pub(crate) fn hash_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic verdict on whether one execution attempt of a DAG node
/// fails transiently. Pure function of the schedule seed and the
/// attempt's identity, so it is independent of event ordering.
pub fn attempt_fails(
    schedule: &FaultSchedule,
    request: RequestId,
    node: usize,
    attempt: u32,
    at: SimTime,
) -> bool {
    let p = schedule.transient_fail_prob_at(at);
    if p <= 0.0 {
        return false;
    }
    let mut h = schedule.seed() ^ 0xfa17_5eed_0000_0001;
    h = splitmix64(h ^ request.0);
    h = splitmix64(h ^ (node as u64).wrapping_shl(17));
    h = splitmix64(h ^ attempt as u64);
    hash_unit(h) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_never_fails_attempts() {
        let sched = FaultConfig::disabled().compile(8, 42);
        assert!(!sched.is_active());
        for req in 0..50u64 {
            assert!(!attempt_fails(&sched, RequestId(req), 0, 0, SimTime::from_millis(req)));
        }
    }

    #[test]
    fn attempt_verdicts_are_deterministic_and_attempt_sensitive() {
        let cfg = FaultConfig { transient_fail_prob: 0.5, ..FaultConfig::storm() };
        let a = cfg.compile(8, 7);
        let b = cfg.compile(8, 7);
        let t = SimTime::from_millis(9_000);
        let mut differs_by_attempt = false;
        for req in 0..100u64 {
            for node in 0..4 {
                for attempt in 0..3 {
                    let va = attempt_fails(&a, RequestId(req), node, attempt, t);
                    let vb = attempt_fails(&b, RequestId(req), node, attempt, t);
                    assert_eq!(va, vb, "verdict must be a pure function of identity");
                    if attempt > 0 && va != attempt_fails(&a, RequestId(req), node, attempt - 1, t)
                    {
                        differs_by_attempt = true;
                    }
                }
            }
        }
        assert!(differs_by_attempt, "retries must get fresh failure draws");
    }

    #[test]
    fn fail_rate_tracks_probability() {
        let cfg = FaultConfig { transient_fail_prob: 0.25, ..FaultConfig::storm() };
        let sched = cfg.compile(8, 3);
        let t = SimTime::from_millis(9_000);
        let fails =
            (0..4000u64).filter(|&req| attempt_fails(&sched, RequestId(req), 1, 0, t)).count();
        let rate = fails as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed rate {rate}");
    }
}
