//! Property tests for the overload-resilience primitives: arbitrary
//! operation sequences replayed twice must leave bit-identical observable
//! state, and the auditor invariants (token conservation, legal breaker
//! walks) must hold after every single step — not just at the end of a
//! run. These are the unit-level halves of the engine's byte-identity
//! guarantees in `tests/determinism.rs`.

use mlp_model::ServiceId;
use mlp_sched::{BreakerBank, BreakerState, BrownoutController, OverloadConfig, RetryBudget};
use mlp_sim::SimTime;
use proptest::prelude::*;

/// A breaker config twitchy enough that random sequences actually walk
/// the whole state machine (trip, cool down, probe, recover).
fn breaker_cfg() -> OverloadConfig {
    let mut o = OverloadConfig::flash_crowd(3.0, 1.0, 2.0);
    o.breaker_min_samples = 4;
    o.breaker_failure_rate = 0.5;
    o.breaker_open_ms = 5.0;
    o.breaker_half_open_probes = 2;
    o
}

/// One scripted breaker-bank operation. Times are deltas so the replayed
/// clock is always monotone, as it is in the simulator.
#[derive(Debug, Clone, Copy)]
enum BankOp {
    Failure(u32, u64),
    Success(u32, u64),
    Tick(u64),
    Gate(u32),
}

fn bank_op() -> impl Strategy<Value = BankOp> {
    prop_oneof![
        (0u32..3, 0u64..20_000).prop_map(|(s, dt)| BankOp::Failure(s, dt)),
        (0u32..3, 0u64..20_000).prop_map(|(s, dt)| BankOp::Success(s, dt)),
        (0u64..20_000).prop_map(BankOp::Tick),
        (0u32..3).prop_map(BankOp::Gate),
    ]
}

/// Replays one op sequence and returns every observable output: gate
/// verdicts, tick-reported transitions, the full transition log, final
/// per-service states, and the trip counter. Panics (failing the case)
/// if any step leaves the bank in an illegal state.
#[allow(clippy::type_complexity)]
fn run_bank(
    ops: &[BankOp],
) -> (
    Vec<Result<(), u32>>,
    Vec<Vec<(u32, u64)>>,
    Vec<(u32, u64, BreakerState, BreakerState)>,
    Vec<BreakerState>,
    u64,
) {
    let cfg = breaker_cfg();
    let mut bank = BreakerBank::new(&cfg);
    let mut now = 0u64;
    let mut gates = Vec::new();
    let mut ticked = Vec::new();
    for &op in ops {
        match op {
            BankOp::Failure(s, dt) => {
                now += dt;
                bank.record_failure(ServiceId(s), SimTime(now));
            }
            BankOp::Success(s, dt) => {
                now += dt;
                bank.record_success(ServiceId(s), SimTime(now));
            }
            BankOp::Tick(dt) => {
                now += dt;
                let moved = bank.tick(SimTime(now));
                ticked.push(moved.iter().map(|t| (t.service.0, t.at.0)).collect::<Vec<_>>());
            }
            BankOp::Gate(s) => {
                gates.push(bank.gate([ServiceId(s)].into_iter()).map_err(|svc| svc.0));
            }
        }
        // The legality invariant is a step invariant, not an end-of-run
        // one: every prefix of a real run is itself a real run.
        if let Err(why) = bank.check_legal() {
            panic!("illegal breaker walk: {why}");
        }
    }
    let log =
        bank.transitions().iter().map(|t| (t.service.0, t.at.0, t.from, t.to)).collect::<Vec<_>>();
    let states = (0..3).map(|s| bank.state(ServiceId(s))).collect::<Vec<_>>();
    (gates, ticked, log, states, bank.opens())
}

proptest! {
    /// The retry budget is exactly conserving after every operation and
    /// replays bit-identically: two walks over the same (dt, take)
    /// schedule agree on every grant/deny verdict and on the final
    /// micro-token ledger down to the f64 bit pattern.
    #[test]
    fn retry_budget_conserves_and_replays(
        burst in 0.0f64..50.0,
        rate in 0.0f64..100.0,
        steps in proptest::collection::vec((0u64..5_000_000, any::<bool>()), 1..200),
    ) {
        let run = |steps: &[(u64, bool)]| {
            let mut b = RetryBudget::new(burst, rate);
            let mut now = 0u64;
            let mut verdicts = Vec::new();
            for &(dt, take) in steps {
                now += dt;
                if take {
                    verdicts.push(b.try_take(SimTime(now)));
                }
                prop_assert!(b.conservation_holds(), "conservation broken at t={now}");
            }
            (verdicts, b.tokens_available().to_bits(), b.granted(), b.denied())
        };
        let a = run(&steps);
        let b = run(&steps);
        prop_assert_eq!(a, b);
    }

    /// Grants can never exceed the published bound for the elapsed
    /// horizon — the bound the benchmark gate holds runs against.
    #[test]
    fn retry_budget_grants_stay_under_bound(
        burst in 0.0f64..20.0,
        rate in 0.0f64..50.0,
        steps in proptest::collection::vec(0u64..2_000_000, 1..200),
    ) {
        let mut b = RetryBudget::new(burst, rate);
        let mut now = 0u64;
        for &dt in &steps {
            now += dt;
            b.try_take(SimTime(now));
        }
        let horizon_s = now as f64 / 1e6;
        // +1 absorbs the fractional token the f64 horizon may round up.
        prop_assert!(
            b.granted() <= b.grant_bound(horizon_s) + 1,
            "granted {} over bound {}",
            b.granted(),
            b.grant_bound(horizon_s)
        );
    }

    /// Breaker banks walk only legal edges under arbitrary interleavings
    /// of outcomes, cooldown ticks, and admission gates — and the entire
    /// observable history replays bit-identically.
    #[test]
    fn breaker_bank_is_legal_and_replayable(
        ops in proptest::collection::vec(bank_op(), 1..300),
    ) {
        let a = run_bank(&ops);
        let b = run_bank(&ops);
        prop_assert_eq!(a, b);
    }

    /// The brownout controller replays bit-identically, never leaves the
    /// tier range 0..=3, reports only real moves (`from != to`), and its
    /// peak-pressure gauge is the running max of the inputs.
    #[test]
    fn brownout_controller_replays_and_stays_in_range(
        pressures in proptest::collection::vec(0.0f64..1.5, 1..300),
    ) {
        let run = |ps: &[f64]| {
            let cfg = OverloadConfig::flash_crowd(3.0, 1.0, 2.0);
            let mut ctl = BrownoutController::new(&cfg);
            let mut moves = Vec::new();
            for &p in ps {
                if let Some((from, to)) = ctl.on_tick(p) {
                    prop_assert!(from != to, "self-loop reported as a move");
                    moves.push((from, to));
                }
                prop_assert!(ctl.tier() <= 3, "tier {} out of range", ctl.tier());
            }
            (moves, ctl.tier(), ctl.transitions(), ctl.peak_pressure().to_bits())
        };
        let a = run(&pressures);
        let b = run(&pressures);
        prop_assert_eq!(a.clone(), b);
        let peak = pressures.iter().cloned().fold(0.0f64, f64::max);
        prop_assert_eq!(a.3, peak.to_bits());
        prop_assert_eq!(a.2, a.0.len() as u64);
    }
}
