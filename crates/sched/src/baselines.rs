//! The four comparison schemes of Table VI.

use crate::placement::{plan_request, FitCursor, MachinePolicy, PlanPolicy};
use crate::plan::{RequestInfo, RequestPlan};
use crate::scheduler::{PlanEnv, Scheduler, SchedulerCtx};
use mlp_model::{Microservice, ResourceVector};
use mlp_sim::SimDuration;
use mlp_trace::{Decision, DecisionKind};
use std::collections::VecDeque;

/// Naive per-node time estimate (ms) used by the simple schedulers, which
/// by definition consult no historical data.
const NAIVE_BUDGET_MS: f64 = 10.0;

/// Number of equal resource slices FairSched divides each machine into.
const FAIR_SLOTS: f64 = 8.0;

/// Placement attempts per scheduling round for ledger-driven schemes.
/// Under overload the waiting queue can hold thousands of requests; trying
/// every one against every machine each round would be quadratic. The cap
/// reflects Algorithm 1's "the algorithm ends until the cluster is
/// saturated": once this many head-of-queue requests fail to place, the
/// cluster is saturated for this round.
pub const MAX_ADMIT_TRIES_PER_ROUND: usize = 16;

// ---------------------------------------------------------------------------
// FairSched — FCFS, equal resource slices (Quincy-style fair sharing).
// ---------------------------------------------------------------------------

/// *FairSched*: first-come-first-served admission; every microservice
/// receives an identical `1/FAIR_SLOTS` slice of a machine regardless of
/// its actual demand. Large services run capped; small ones strand
/// resources — the paper's archetype of a microservice-oblivious scheme.
#[derive(Debug, Default)]
pub struct FairSched {
    queue: VecDeque<RequestInfo>,
    rr_cursor: usize,
    fit: FitCursor,
}

impl FairSched {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Budgets and grants are cluster-independent once the slice is captured
/// (the env carries no cluster view), so `FairSched::schedule` computes
/// the equal slice up front from the (homogeneous) machine capacity.
struct FairPolicy {
    slice: ResourceVector,
}

impl PlanPolicy for FairPolicy {
    fn budget(&self, _n: usize, _s: &Microservice, _wf: f64, _e: &PlanEnv<'_>) -> SimDuration {
        SimDuration::from_millis_f64(NAIVE_BUDGET_MS)
    }
    fn grant(&self, _n: usize, _s: &Microservice, _e: &PlanEnv<'_>) -> ResourceVector {
        // An equal slice of a (homogeneous) machine.
        self.slice
    }
    fn machine_policy(&self) -> MachinePolicy {
        MachinePolicy::RoundRobin
    }
    fn reserve(&self) -> bool {
        false
    }
}

impl Scheduler for FairSched {
    fn name(&self) -> &'static str {
        "FairSched"
    }

    fn on_arrival(&mut self, req: RequestInfo, _ctx: &mut SchedulerCtx<'_>) {
        self.queue.push_back(req);
    }

    fn schedule(&mut self, ctx: &mut SchedulerCtx<'_>) -> Vec<RequestPlan> {
        let policy = FairPolicy { slice: ctx.cluster.machines()[0].capacity * (1.0 / FAIR_SLOTS) };
        let mut plans = Vec::with_capacity(self.queue.len());
        while let Some(req) = self.queue.pop_front() {
            let plan = plan_request(&req, &policy, &mut self.rr_cursor, &mut self.fit, ctx)
                .expect("round-robin placement cannot fail");
            plans.push(plan);
        }
        plans
    }

    fn waiting(&self) -> usize {
        self.queue.len()
    }
}

// ---------------------------------------------------------------------------
// CurSched — FCFS, place by current load.
// ---------------------------------------------------------------------------

/// *CurSched*: first-come-first-served; each microservice is granted its
/// nominal demand on whichever machine is least loaded *right now*. No
/// future view: bursts pile work onto machines that look idle at admission
/// but won't be when the service actually invokes.
#[derive(Debug, Default)]
pub struct CurSched {
    queue: VecDeque<RequestInfo>,
    rr_cursor: usize,
    fit: FitCursor,
}

impl CurSched {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

struct CurPolicy;

impl PlanPolicy for CurPolicy {
    fn budget(&self, _n: usize, _s: &Microservice, _wf: f64, _e: &PlanEnv<'_>) -> SimDuration {
        SimDuration::from_millis_f64(NAIVE_BUDGET_MS)
    }
    fn grant(&self, _n: usize, svc: &Microservice, _e: &PlanEnv<'_>) -> ResourceVector {
        svc.demand
    }
    fn machine_policy(&self) -> MachinePolicy {
        MachinePolicy::LeastLoaded
    }
    fn reserve(&self) -> bool {
        false
    }
}

impl Scheduler for CurSched {
    fn name(&self) -> &'static str {
        "CurSched"
    }

    fn on_arrival(&mut self, req: RequestInfo, _ctx: &mut SchedulerCtx<'_>) {
        self.queue.push_back(req);
    }

    fn schedule(&mut self, ctx: &mut SchedulerCtx<'_>) -> Vec<RequestPlan> {
        let mut plans = Vec::with_capacity(self.queue.len());
        while let Some(req) = self.queue.pop_front() {
            let plan = plan_request(&req, &CurPolicy, &mut self.rr_cursor, &mut self.fit, ctx)
                .expect("least-loaded placement cannot fail");
            plans.push(plan);
        }
        plans
    }

    fn waiting(&self) -> usize {
        self.queue.len()
    }
}

// ---------------------------------------------------------------------------
// Priority queue shared by the advanced schemes ("Prior." in Table VI).
// ---------------------------------------------------------------------------

/// The priority key: earliest SLO deadline (`arrival + SLO`), the
/// conventional priority for SLA-driven schedulers.
fn deadline_key(r: &RequestInfo, ctx: &SchedulerCtx<'_>) -> mlp_sim::SimTime {
    let slo = ctx.catalog.request(r.rtype).slo_ms;
    r.arrival + SimDuration::from_millis_f64(slo)
}

/// Inserts an arrival into a deadline-sorted queue at the upper bound of
/// its key. A deadline never changes once a request exists and deferrals
/// preserve relative order, so maintaining the order on insert is exactly
/// equivalent to the old per-round *stable* sort (a new arrival sat at the
/// back, i.e. after every equal-deadline request) — at O(log n) search +
/// one memmove instead of an O(n log n) sort every round.
fn insert_by_deadline(queue: &mut Vec<RequestInfo>, req: RequestInfo, ctx: &SchedulerCtx<'_>) {
    let key = deadline_key(&req, ctx);
    let at = queue.partition_point(|r| deadline_key(r, ctx) <= key);
    queue.insert(at, req);
}

// ---------------------------------------------------------------------------
// PartProfile — priority queue, placement by performance (time) profile.
// ---------------------------------------------------------------------------

/// *PartProfile* (GrandSLAm-style): reorders the waiting queue by SLO
/// deadline and reserves machine time using the *mean historical execution
/// time* of each microservice. It profiles performance but not resource
/// usage, and plans with means — so execution-time tails still break its
/// alignment.
#[derive(Debug, Default)]
pub struct PartProfile {
    queue: Vec<RequestInfo>,
    rr_cursor: usize,
    fit: FitCursor,
}

impl PartProfile {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

struct PartPolicy;

impl PlanPolicy for PartPolicy {
    fn budget(&self, _n: usize, svc: &Microservice, wf: f64, env: &PlanEnv<'_>) -> SimDuration {
        let mean = env.profiles.mean_exec_ms(svc.id).unwrap_or(svc.base_ms);
        SimDuration::from_millis_f64(mean * wf)
    }
    fn grant(&self, _n: usize, svc: &Microservice, _e: &PlanEnv<'_>) -> ResourceVector {
        svc.demand
    }
    fn machine_policy(&self) -> MachinePolicy {
        MachinePolicy::LedgerEarliestFit
    }
    fn reserve(&self) -> bool {
        true
    }
}

impl Scheduler for PartProfile {
    fn name(&self) -> &'static str {
        "PartProfile"
    }

    fn on_arrival(&mut self, req: RequestInfo, ctx: &mut SchedulerCtx<'_>) {
        insert_by_deadline(&mut self.queue, req, ctx);
    }

    fn schedule(&mut self, ctx: &mut SchedulerCtx<'_>) -> Vec<RequestPlan> {
        // The queue is deadline-sorted by construction (`on_arrival`
        // inserts in order; deferrals below keep it).
        self.fit.begin_round(ctx.now);
        let mut plans = Vec::new();
        let mut deferred = Vec::new();
        let pending = std::mem::take(&mut self.queue);
        let mut failures = 0usize;
        for (i, req) in pending.iter().enumerate() {
            if failures >= MAX_ADMIT_TRIES_PER_ROUND {
                deferred.extend_from_slice(&pending[i..]);
                break;
            }
            match plan_request(req, &PartPolicy, &mut self.rr_cursor, &mut self.fit, ctx) {
                Some(plan) => plans.push(plan),
                None => {
                    failures += 1;
                    ctx.audit.record(
                        Decision::new(ctx.now, DecisionKind::Defer, "no-ledger-slot")
                            .request(req.id),
                    );
                    deferred.push(*req);
                }
            }
        }
        self.queue = deferred;
        plans
    }

    fn waiting(&self) -> usize {
        self.queue.len()
    }
}

// ---------------------------------------------------------------------------
// FullProfile — priority queue, allocation by the overall profile.
// ---------------------------------------------------------------------------

/// *FullProfile* (Paragon-style SOTA): reorders by SLO deadline and plans
/// with the *full* profile — mean execution time **and** mean observed
/// resource usage (instead of nominal demand). Efficient on average, but
/// mean-based reservations under-provision volatile services and the
/// scheme neither reorders by volatility nor heals deviations.
#[derive(Debug, Default)]
pub struct FullProfile {
    queue: Vec<RequestInfo>,
    rr_cursor: usize,
    fit: FitCursor,
}

impl FullProfile {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

struct FullPolicy;

impl PlanPolicy for FullPolicy {
    fn budget(&self, _n: usize, svc: &Microservice, wf: f64, env: &PlanEnv<'_>) -> SimDuration {
        let mean = env.profiles.mean_exec_ms(svc.id).unwrap_or(svc.base_ms);
        // Small engineering margin over the mean; still far short of tails.
        SimDuration::from_millis_f64(mean * wf * 1.1)
    }
    fn grant(&self, _n: usize, svc: &Microservice, env: &PlanEnv<'_>) -> ResourceVector {
        let observed = env.profiles.mean_usage(svc.id);
        if observed == ResourceVector::ZERO {
            svc.demand
        } else {
            observed
        }
    }
    fn machine_policy(&self) -> MachinePolicy {
        MachinePolicy::LedgerEarliestFit
    }
    fn reserve(&self) -> bool {
        true
    }
}

impl Scheduler for FullProfile {
    fn name(&self) -> &'static str {
        "FullProfile"
    }

    fn on_arrival(&mut self, req: RequestInfo, ctx: &mut SchedulerCtx<'_>) {
        insert_by_deadline(&mut self.queue, req, ctx);
    }

    fn schedule(&mut self, ctx: &mut SchedulerCtx<'_>) -> Vec<RequestPlan> {
        // Deadline-sorted by construction, exactly like `PartProfile`.
        self.fit.begin_round(ctx.now);
        let mut plans = Vec::new();
        let mut deferred = Vec::new();
        let pending = std::mem::take(&mut self.queue);
        let mut failures = 0usize;
        for (i, req) in pending.iter().enumerate() {
            if failures >= MAX_ADMIT_TRIES_PER_ROUND {
                deferred.extend_from_slice(&pending[i..]);
                break;
            }
            match plan_request(req, &FullPolicy, &mut self.rr_cursor, &mut self.fit, ctx) {
                Some(plan) => plans.push(plan),
                None => {
                    failures += 1;
                    ctx.audit.record(
                        Decision::new(ctx.now, DecisionKind::Defer, "no-ledger-slot")
                            .request(req.id),
                    );
                    deferred.push(*req);
                }
            }
        }
        self.queue = deferred;
        plans
    }

    fn waiting(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_cluster::Cluster;
    use mlp_model::RequestCatalog;
    use mlp_net::NetworkModel;
    use mlp_sim::SimTime;
    use mlp_trace::{AuditLog, MetricsRegistry, ProfileStore, RequestId};

    struct Harness {
        cluster: Cluster,
        catalog: RequestCatalog,
        net: NetworkModel,
        profiles: ProfileStore,
        metrics: MetricsRegistry,
        audit: AuditLog,
    }

    impl Harness {
        fn new(machines: usize) -> Self {
            Harness {
                cluster: Cluster::homogeneous(
                    machines,
                    ResourceVector::new(6.0, 32_000.0, 1_000.0),
                ),
                catalog: RequestCatalog::paper(),
                net: NetworkModel::paper_default(),
                profiles: ProfileStore::new(),
                metrics: MetricsRegistry::new(),
                audit: AuditLog::disabled(),
            }
        }

        fn ctx(&mut self, now_ms: u64) -> SchedulerCtx<'_> {
            SchedulerCtx {
                now: SimTime::from_millis(now_ms),
                cluster: &mut self.cluster,
                profiles: &self.profiles,
                catalog: &self.catalog,
                net: &self.net,
                metrics: &self.metrics,
                audit: &self.audit,
            }
        }

        fn req(&self, id: u64, name: &str, arrival_ms: u64) -> RequestInfo {
            RequestInfo {
                id: RequestId(id),
                rtype: self.catalog.request_by_name(name).unwrap().id,
                arrival: SimTime::from_millis(arrival_ms),
            }
        }
    }

    #[test]
    fn fairsched_admits_everything_fcfs() {
        let mut h = Harness::new(4);
        let r1 = h.req(1, "basicSearch", 0);
        let r2 = h.req(2, "compose-post", 1);
        let mut s = FairSched::new();
        let mut ctx = h.ctx(1);
        s.on_arrival(r1, &mut ctx);
        s.on_arrival(r2, &mut ctx);
        assert_eq!(s.waiting(), 2);
        let plans = s.schedule(&mut ctx);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].request, RequestId(1), "FCFS order");
        assert_eq!(s.waiting(), 0);
        // Equal slices: every node gets capacity/8 regardless of demand.
        let slice = ResourceVector::new(6.0, 32_000.0, 1_000.0) * (1.0 / 8.0);
        for np in &plans[0].nodes {
            assert_eq!(np.grant, slice);
            assert!(!np.reserved);
        }
    }

    #[test]
    fn cursched_places_on_least_loaded() {
        let mut h = Harness::new(3);
        let _ = h
            .cluster
            .machine_mut(mlp_cluster::MachineId(0))
            .occupy(ResourceVector::new(5.0, 0.0, 0.0));
        let _ = h
            .cluster
            .machine_mut(mlp_cluster::MachineId(2))
            .occupy(ResourceVector::new(3.0, 0.0, 0.0));
        let r = h.req(1, "read-user-timeline", 0);
        let mut s = CurSched::new();
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        for np in &plans[0].nodes {
            assert_eq!(np.machine, mlp_cluster::MachineId(1));
        }
    }

    #[test]
    fn partprofile_orders_by_deadline() {
        let mut h = Harness::new(8);
        // basicSearch SLO ≈ 5×(3+15+25+12) vs read-user-timeline 75ms;
        // the tighter-deadline request must be planned first even if it
        // arrived later.
        let loose = h.req(1, "basicSearch", 0);
        let tight = h.req(2, "read-user-timeline", 5);
        let mut s = PartProfile::new();
        let mut ctx = h.ctx(5);
        s.on_arrival(loose, &mut ctx);
        s.on_arrival(tight, &mut ctx);
        let plans = s.schedule(&mut ctx);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].request, RequestId(2), "earliest deadline first");
    }

    #[test]
    fn partprofile_uses_profile_means_for_budgets() {
        let mut h = Harness::new(2);
        let svc = h.catalog.request_by_name("read-user-timeline").unwrap().dag.node(0).service;
        for ms in [40.0, 60.0] {
            h.profiles.record(
                svc,
                mlp_trace::ExecutionCase {
                    usage: ResourceVector::ZERO,
                    machine_load: 0.0,
                    exec_ms: ms,
                },
            );
        }
        let r = h.req(1, "read-user-timeline", 0);
        let mut s = PartProfile::new();
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        // Node 0's budget = profiled mean (50ms), not base (2ms).
        assert_eq!(plans[0].nodes[0].budget, SimDuration::from_millis(50));
        assert!(plans[0].nodes[0].reserved);
    }

    #[test]
    fn fullprofile_defers_unplaceable_requests() {
        let mut h = Harness::new(1);
        // Saturate the single machine's ledger for a long time.
        h.cluster.machine_mut(mlp_cluster::MachineId(0)).ledger.reserve(
            SimTime::ZERO,
            SimTime::from_secs(120),
            ResourceVector::new(6.0, 32_000.0, 1_000.0),
        );
        let r = h.req(1, "basicSearch", 0);
        let mut s = FullProfile::new();
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        assert!(plans.is_empty());
        assert_eq!(s.waiting(), 1, "request stays queued for the next round");
    }

    #[test]
    fn fullprofile_grants_observed_usage() {
        let mut h = Harness::new(2);
        let rt = h.catalog.request_by_name("read-user-timeline").unwrap();
        let svc = rt.dag.node(1).service;
        let nominal = h.catalog.services.get(rt.dag.node(0).service).demand;
        let observed = ResourceVector::new(0.2, 100.0, 5.0);
        h.profiles.record(
            svc,
            mlp_trace::ExecutionCase { usage: observed, machine_load: 0.1, exec_ms: 8.0 },
        );
        let r = h.req(1, "read-user-timeline", 0);
        let mut s = FullProfile::new();
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        assert_eq!(plans[0].nodes[1].grant, observed);
        // Unprofiled node falls back to nominal demand.
        assert_eq!(plans[0].nodes[0].grant, nominal);
    }

    #[test]
    fn names_match_table6() {
        assert_eq!(FairSched::new().name(), "FairSched");
        assert_eq!(CurSched::new().name(), "CurSched");
        assert_eq!(PartProfile::new().name(), "PartProfile");
        assert_eq!(FullProfile::new().name(), "FullProfile");
    }
}
