//! # mlp-sched — scheduler framework and the Table VI baselines
//!
//! Defines the [`Scheduler`] interface that the trace-driven engine drives
//! (arrivals → scheduling rounds → span lifecycle → deviation callbacks)
//! and implements the paper's four comparison schemes:
//!
//! | Category | Scheme | Behaviour |
//! |---|---|---|
//! | Simple   | `FairSched`   | FCFS; every microservice gets an equal resource slice |
//! | Simple   | `CurSched`    | FCFS; places on the currently least-loaded machine |
//! | Advanced | `PartProfile` | priority queue; placement driven by execution-time profiles |
//! | Advanced | `FullProfile` | priority queue; reservation driven by the full (time + resource) profile |
//!
//! The paper's own scheme, v-MLP, lives in `mlp-core` and implements the
//! same trait.

pub mod baselines;
pub mod overload;
pub mod placement;
pub mod plan;
pub mod scheduler;
pub mod search;

pub use baselines::{CurSched, FairSched, FullProfile, PartProfile};
pub use overload::{
    pressure_signal, AdmissionRecord, AdmissionVerdict, BreakerBank, BreakerState,
    BreakerTransition, BrownoutController, OverloadConfig, OverloadRuntime, RetryBudget,
};
pub use plan::{NodePlan, RequestInfo, RequestPlan};
pub use scheduler::{HealingAction, LateInfo, NodeFailure, PlanEnv, Scheduler, SchedulerCtx};
pub use search::{SearchConfig, SearchSched};
