//! SearchSched — a seeded local-search placement contender.
//!
//! The registry's first out-of-enum scheduler (VMALS-flavoured): requests
//! are admitted in deadline order exactly like the profiling baselines,
//! but every admitted plan is then *refined* by a bounded
//! variable-neighborhood search. The greedy earliest-fit plan is the
//! incumbent; each VNS iteration re-pins `k` random DAG nodes onto
//! machines drawn from a bounded candidate window, rebuilds the schedule
//! in topological order against the real reservation ledgers, and keeps
//! the candidate only when it strictly improves the plan's makespan. A
//! failed move is rolled back with the ledger's exact `unreserve`
//! (bitwise-restoring, see `placement.rs` tests), so a refinement round
//! leaves no trace unless it wins.
//!
//! Every stochastic choice comes from a [`SimRng`] forked from the
//! experiment seed, and all moves run sequentially inside `schedule()`,
//! so the whole scheme is deterministic: same seed → identical plans,
//! identical audit trail.

use crate::baselines::MAX_ADMIT_TRIES_PER_ROUND;
use crate::placement::{plan_request, unreserve_plan, FitCursor, MachinePolicy, PlanPolicy};
use crate::plan::{NodePlan, RequestInfo, RequestPlan};
use crate::scheduler::{PlanEnv, Scheduler, SchedulerCtx};
use mlp_cluster::{Machine, MachineId};
use mlp_model::{Microservice, ResourceVector};
use mlp_sim::{SimDuration, SimRng, SimTime};
use mlp_trace::{Decision, DecisionKind};
use rand::Rng;

/// RNG stream id the scheduler forks off the experiment seed. Streams 0–2
/// are taken by arrivals / simulation / profile warm-up and 3 by the
/// overload runtime (see the engine's `run_full`/`simulate`); a dedicated
/// stream keeps SearchSched's draws independent of the offered load shared
/// with every other scheme.
pub const SEARCH_RNG_STREAM: u64 = 4;

/// Tuning knobs for [`SearchSched`], all exposed as typed registry params.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Maximum VNS neighborhood size: the largest number of nodes a single
    /// move may re-pin. The search starts at `k = 1`, grows `k` on every
    /// non-improving move, and resets to 1 on an improvement.
    pub neighborhood: usize,
    /// Candidate machine window per re-pinned node: a move draws the
    /// node's new machine from this many consecutive machines starting at
    /// a seeded offset, instead of scanning the fleet.
    pub window: usize,
    /// VNS iterations spent refining one admitted request.
    pub iters: usize,
    /// Refined admissions per scheduling round; admissions past this cap
    /// keep their greedy plan untouched, bounding per-tick search cost.
    pub round_budget: usize,
    /// Multiplier over the profiled mean execution time used as each
    /// node's reservation budget (the baselines' engineering margin).
    pub margin: f64,
}

impl SearchConfig {
    /// Defaults sized so a refinement round costs the same order of work
    /// as the baselines' admission scan.
    pub fn default_config() -> Self {
        SearchConfig { neighborhood: 3, window: 8, iters: 12, round_budget: 8, margin: 1.1 }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// Greedy seed policy: FullProfile's profile-driven budgets and grants
/// (mean execution time × margin, mean observed usage) over the shared
/// earliest-fit ledger scan. The search refines *placements*, so it
/// deliberately reuses the strongest baseline's estimates.
struct SearchPolicy {
    margin: f64,
}

impl PlanPolicy for SearchPolicy {
    fn budget(&self, _n: usize, svc: &Microservice, wf: f64, env: &PlanEnv<'_>) -> SimDuration {
        let mean = env.profiles.mean_exec_ms(svc.id).unwrap_or(svc.base_ms);
        SimDuration::from_millis_f64(mean * wf * self.margin)
    }
    fn grant(&self, _n: usize, svc: &Microservice, env: &PlanEnv<'_>) -> ResourceVector {
        let observed = env.profiles.mean_usage(svc.id);
        if observed == ResourceVector::ZERO {
            svc.demand
        } else {
            observed
        }
    }
    fn machine_policy(&self) -> MachinePolicy {
        MachinePolicy::LedgerEarliestFit
    }
    fn reserve(&self) -> bool {
        true
    }
}

/// The plan cost the search minimizes: makespan end first, then the sum
/// of planned starts (earlier work beats equal-makespan procrastination).
fn plan_cost(plan: &RequestPlan) -> (SimTime, u128) {
    let start_sum = plan.nodes.iter().map(|n| n.planned_start.0 as u128).sum();
    (plan.planned_makespan_end(), start_sum)
}

/// One ledger probe without the memo layer: VNS move evaluation touches a
/// bounded number of (machine, slot) pairs, and every accepted move
/// invalidates earlier probes anyway.
fn probe(
    m: &Machine,
    ready: SimTime,
    horizon_end: SimTime,
    budget: SimDuration,
    grant: ResourceVector,
) -> Option<SimTime> {
    if !m.is_up() || !m.ledger.might_fit(grant) {
        return None;
    }
    m.ledger.earliest_fit(ready, horizon_end, budget, grant)
}

/// The volatility-agnostic local-search scheduler.
pub struct SearchSched {
    cfg: SearchConfig,
    queue: Vec<RequestInfo>,
    rr_cursor: usize,
    fit: FitCursor,
    rng: SimRng,
    /// Plans improved by the VNS refinement (diagnostics).
    improved: u64,
    /// Refinement moves evaluated (diagnostics).
    moves: u64,
}

impl SearchSched {
    /// Creates the scheme with default knobs, seeded from the experiment
    /// seed.
    pub fn new(seed: u64) -> Self {
        Self::with_config(SearchConfig::default_config(), seed)
    }

    /// Creates a configured instance seeded from the experiment seed.
    pub fn with_config(cfg: SearchConfig, seed: u64) -> Self {
        SearchSched {
            cfg,
            queue: Vec::new(),
            rr_cursor: 0,
            fit: FitCursor::new(),
            rng: SimRng::new(seed).fork(SEARCH_RNG_STREAM),
            improved: 0,
            moves: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> SearchConfig {
        self.cfg
    }

    /// `(plans improved, moves evaluated)` since construction.
    pub fn search_stats(&self) -> (u64, u64) {
        (self.improved, self.moves)
    }

    /// Rebuilds a complete schedule for `req` with every node pinned to
    /// `assignment`, reserving as it goes. Rolls its reservations back and
    /// returns `None` when any node has no window on its pinned machine.
    fn plan_pinned(
        &mut self,
        req: &RequestInfo,
        assignment: &[MachineId],
        budgets: &[SimDuration],
        grants: &[ResourceVector],
        ctx: &mut SchedulerCtx<'_>,
    ) -> Option<RequestPlan> {
        let dag = &ctx.catalog.request(req.rtype).dag;
        let order = dag.topo_order().expect("request DAGs are validated acyclic");
        let horizon_end = ctx.now + SearchPolicy { margin: self.cfg.margin }.horizon();
        let mut nodes: Vec<Option<NodePlan>> = vec![None; dag.len()];
        let mut reserved: Vec<(MachineId, SimTime, SimTime, ResourceVector)> = Vec::new();

        for &i in &order {
            let svc = ctx.catalog.services.get(dag.node(i).service);
            let mut ready = ctx.now;
            for p in dag.parents_iter(i) {
                let parent = nodes[p].as_ref().expect("topo order visits parents first");
                let t = parent.planned_end() + ctx.net.expected_delay(false, svc.comm);
                if t > ready {
                    ready = t;
                }
            }
            let machine = assignment[i];
            let start = match probe(
                ctx.cluster.machine(machine),
                ready,
                horizon_end,
                budgets[i],
                grants[i],
            ) {
                Some(slot) => slot,
                None => {
                    for (m, from, to, amt) in reserved {
                        ctx.cluster.machine_mut(m).ledger.unreserve(from, to, amt);
                    }
                    return None;
                }
            };
            let reserve = budgets[i] > SimDuration::ZERO;
            if reserve {
                let end = start + budgets[i];
                ctx.cluster.machine_mut(machine).ledger.reserve(start, end, grants[i]);
                reserved.push((machine, start, end, grants[i]));
            }
            nodes[i] = Some(NodePlan {
                machine,
                planned_start: start,
                budget: budgets[i],
                grant: grants[i],
                reserved: reserve,
            });
        }
        Some(RequestPlan {
            request: req.id,
            nodes: nodes.into_iter().map(|n| n.expect("all nodes planned")).collect(),
        })
    }

    /// Re-reserves exactly the slots a previously unreserved plan held —
    /// legal because `reserve`/`unreserve` round-trips are exact.
    fn restore_plan(plan: &RequestPlan, ctx: &mut SchedulerCtx<'_>) {
        for np in &plan.nodes {
            if np.reserved {
                ctx.cluster.machine_mut(np.machine).ledger.reserve(
                    np.planned_start,
                    np.planned_end(),
                    np.grant,
                );
            }
        }
    }

    /// VNS refinement of one admitted (and currently reserved) plan.
    fn refine(
        &mut self,
        req: &RequestInfo,
        mut best: RequestPlan,
        ctx: &mut SchedulerCtx<'_>,
    ) -> RequestPlan {
        let n_machines = ctx.cluster.len();
        let n_nodes = best.nodes.len();
        if n_machines < 2 || n_nodes == 0 {
            return best;
        }
        let env = ctx.env();
        let dag = &ctx.catalog.request(req.rtype).dag;
        let policy = SearchPolicy { margin: self.cfg.margin };
        let budgets: Vec<SimDuration> = (0..n_nodes)
            .map(|i| {
                let node = dag.node(i);
                policy.budget(i, ctx.catalog.services.get(node.service), node.work_factor, &env)
            })
            .collect();
        let grants: Vec<ResourceVector> = (0..n_nodes)
            .map(|i| policy.grant(i, ctx.catalog.services.get(dag.node(i).service), &env))
            .collect();

        let window = self.cfg.window.clamp(1, n_machines);
        let mut best_cost = plan_cost(&best);
        let mut k = 1usize;
        for _ in 0..self.cfg.iters {
            // Draw the move first so the RNG stream is consumed
            // identically whether or not the move ends up feasible.
            let mut assignment: Vec<MachineId> = best.nodes.iter().map(|n| n.machine).collect();
            for _ in 0..k.min(n_nodes) {
                let node = self.rng.gen_range(0..n_nodes);
                let base = self.rng.gen_range(0..n_machines);
                let offset = self.rng.gen_range(0..window);
                assignment[node] = MachineId(((base + offset) % n_machines) as u32);
            }
            self.moves += 1;

            unreserve_plan(&best, ctx);
            let candidate = self.plan_pinned(req, &assignment, &budgets, &grants, ctx);
            match candidate {
                Some(cand) if plan_cost(&cand) < best_cost => {
                    ctx.audit.record(
                        Decision::new(ctx.now, DecisionKind::PlacementRefine, "search-improved")
                            .request(req.id),
                    );
                    self.improved += 1;
                    best_cost = plan_cost(&cand);
                    best = cand;
                    k = 1;
                }
                other => {
                    if let Some(cand) = other {
                        unreserve_plan(&cand, ctx);
                    }
                    Self::restore_plan(&best, ctx);
                    k = if k >= self.cfg.neighborhood { 1 } else { k + 1 };
                }
            }
        }
        best
    }
}

/// Deadline priority, identical to the profiling baselines.
fn deadline_key(r: &RequestInfo, ctx: &SchedulerCtx<'_>) -> SimTime {
    let slo = ctx.catalog.request(r.rtype).slo_ms;
    r.arrival + SimDuration::from_millis_f64(slo)
}

impl Scheduler for SearchSched {
    fn name(&self) -> &'static str {
        "SearchSched"
    }

    fn on_arrival(&mut self, req: RequestInfo, ctx: &mut SchedulerCtx<'_>) {
        let key = deadline_key(&req, ctx);
        let at = self.queue.partition_point(|r| deadline_key(r, ctx) <= key);
        self.queue.insert(at, req);
    }

    fn schedule(&mut self, ctx: &mut SchedulerCtx<'_>) -> Vec<RequestPlan> {
        self.fit.begin_round(ctx.now);
        let policy = SearchPolicy { margin: self.cfg.margin };
        let mut plans = Vec::new();
        let mut deferred = Vec::new();
        let pending = std::mem::take(&mut self.queue);
        let mut failures = 0usize;
        let mut refined = 0usize;
        for (i, req) in pending.iter().enumerate() {
            if failures >= MAX_ADMIT_TRIES_PER_ROUND {
                deferred.extend_from_slice(&pending[i..]);
                break;
            }
            match plan_request(req, &policy, &mut self.rr_cursor, &mut self.fit, ctx) {
                Some(greedy) => {
                    let plan = if refined < self.cfg.round_budget {
                        refined += 1;
                        self.refine(req, greedy, ctx)
                    } else {
                        greedy
                    };
                    plans.push(plan);
                }
                None => {
                    failures += 1;
                    ctx.audit.record(
                        Decision::new(ctx.now, DecisionKind::Defer, "no-ledger-slot")
                            .request(req.id),
                    );
                    deferred.push(*req);
                }
            }
        }
        self.queue = deferred;
        plans
    }

    fn waiting(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_cluster::Cluster;
    use mlp_model::RequestCatalog;
    use mlp_net::NetworkModel;
    use mlp_trace::{AuditLog, MetricsRegistry, ProfileStore, RequestId};

    struct Harness {
        cluster: Cluster,
        catalog: RequestCatalog,
        net: NetworkModel,
        profiles: ProfileStore,
        metrics: MetricsRegistry,
        audit: AuditLog,
    }

    impl Harness {
        fn new(machines: usize) -> Self {
            Harness {
                cluster: Cluster::homogeneous(
                    machines,
                    ResourceVector::new(6.0, 32_000.0, 1_000.0),
                ),
                catalog: RequestCatalog::paper(),
                net: NetworkModel::paper_default(),
                profiles: ProfileStore::new(),
                metrics: MetricsRegistry::new(),
                audit: AuditLog::disabled(),
            }
        }

        fn ctx(&mut self, now_ms: u64) -> SchedulerCtx<'_> {
            SchedulerCtx {
                now: SimTime::from_millis(now_ms),
                cluster: &mut self.cluster,
                profiles: &self.profiles,
                catalog: &self.catalog,
                net: &self.net,
                metrics: &self.metrics,
                audit: &self.audit,
            }
        }

        fn req(&self, id: u64, name: &str, arrival_ms: u64) -> RequestInfo {
            RequestInfo {
                id: RequestId(id),
                rtype: self.catalog.request_by_name(name).unwrap().id,
                arrival: SimTime::from_millis(arrival_ms),
            }
        }
    }

    #[test]
    fn plans_respect_dag_and_reserve() {
        let mut h = Harness::new(6);
        let r = h.req(1, "compose-post", 0);
        let mut s = SearchSched::new(7);
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        assert_eq!(plans.len(), 1);
        let dag = &ctx.catalog.request_by_name("compose-post").unwrap().dag;
        assert!(plans[0].respects_dag(dag));
        assert!(plans[0].nodes.iter().all(|n| n.reserved));
        assert_eq!(s.waiting(), 0);
    }

    #[test]
    fn same_seed_produces_identical_plans() {
        let run = |seed: u64| {
            let mut h = Harness::new(6);
            let reqs = [
                h.req(1, "compose-post", 0),
                h.req(2, "basicSearch", 1),
                h.req(3, "compose-post", 2),
            ];
            let mut s = SearchSched::new(seed);
            let mut ctx = h.ctx(2);
            for r in reqs {
                s.on_arrival(r, &mut ctx);
            }
            s.schedule(&mut ctx)
        };
        assert_eq!(run(42), run(42), "same seed must replay bitwise");
        // Different seeds are allowed to differ (and usually do); this
        // only asserts the RNG actually participates.
        let _ = run(43);
    }

    #[test]
    fn refinement_never_worsens_the_greedy_plan() {
        // The greedy plan is the incumbent: whatever the search does, the
        // returned plan's makespan is never later than greedy's.
        let mut h = Harness::new(4);
        // Pre-load some ledgers so moves actually face contention.
        for m in h.cluster.machines_mut() {
            if m.id.0 % 2 == 0 {
                m.ledger.reserve(
                    SimTime::ZERO,
                    SimTime::from_secs(1),
                    ResourceVector::new(4.0, 20_000.0, 600.0),
                );
            }
        }
        let r = h.req(1, "compose-post", 0);

        let greedy_end = {
            let mut h2 = Harness::new(4);
            for m in h2.cluster.machines_mut() {
                if m.id.0 % 2 == 0 {
                    m.ledger.reserve(
                        SimTime::ZERO,
                        SimTime::from_secs(1),
                        ResourceVector::new(4.0, 20_000.0, 600.0),
                    );
                }
            }
            let mut s = SearchSched::with_config(
                SearchConfig { iters: 0, ..SearchConfig::default_config() },
                9,
            );
            let r2 = h2.req(1, "compose-post", 0);
            let mut ctx = h2.ctx(0);
            s.on_arrival(r2, &mut ctx);
            s.schedule(&mut ctx)[0].planned_makespan_end()
        };

        let mut s = SearchSched::with_config(
            SearchConfig { iters: 32, ..SearchConfig::default_config() },
            9,
        );
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let refined = &s.schedule(&mut ctx)[0];
        assert!(refined.planned_makespan_end() <= greedy_end);
    }

    #[test]
    fn rejected_moves_restore_ledgers_exactly() {
        let mut h = Harness::new(5);
        let baseline: Vec<ResourceVector> = h
            .cluster
            .machines()
            .iter()
            .map(|m| m.ledger.available(SimTime::ZERO, SimTime::from_secs(30)))
            .collect();
        let r = h.req(1, "read-user-timeline", 0);
        let mut s = SearchSched::new(11);
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        // Undo the surviving plan; ledgers must be bitwise back to start
        // regardless of how many candidate moves were tried and rejected.
        unreserve_plan(&plans[0], &mut ctx);
        for (m, before) in ctx.cluster.machines().iter().zip(baseline) {
            let after = m.ledger.available(SimTime::ZERO, SimTime::from_secs(30));
            assert_eq!(after, before, "machine {:?} ledger not restored", m.id);
        }
    }

    #[test]
    fn saturated_cluster_defers_with_audit() {
        let mut h = Harness::new(1);
        h.cluster.machine_mut(MachineId(0)).ledger.reserve(
            SimTime::ZERO,
            SimTime::from_secs(120),
            ResourceVector::new(6.0, 32_000.0, 1_000.0),
        );
        let r = h.req(1, "basicSearch", 0);
        let mut s = SearchSched::new(5);
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        assert!(s.schedule(&mut ctx).is_empty());
        assert_eq!(s.waiting(), 1, "request stays queued for the next round");
    }
}
