//! Scheduling plans: where and when each microservice of a request runs.

use mlp_cluster::MachineId;
use mlp_model::{RequestTypeId, ResourceVector};
use mlp_sim::{SimDuration, SimTime};
use mlp_trace::RequestId;
use serde::{Deserialize, Serialize};

/// Identity and arrival data of a request awaiting scheduling; its DAG and
/// SLO come from the [`mlp_model::RequestCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestInfo {
    /// Request instance id.
    pub id: RequestId,
    /// Request type (indexes the catalog).
    pub rtype: RequestTypeId,
    /// Arrival time (`t_arr` in the reorder ratio).
    pub arrival: SimTime,
}

/// The plan for a single DAG node: the paper's "assign `s_k` to machine
/// `m_n`" with its time budget Δt and resource grant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePlan {
    /// Machine the node is assigned to.
    pub machine: MachineId,
    /// Planned invocation time.
    pub planned_start: SimTime,
    /// Reserved execution budget Δt.
    pub budget: SimDuration,
    /// Resource grant (what the scheduler allocates; may differ from the
    /// service's true demand — FairSched grants equal slices).
    pub grant: ResourceVector,
    /// Whether the grant was written into the machine's future ledger
    /// (profile-driven schemes reserve; simple schemes do not).
    pub reserved: bool,
}

impl NodePlan {
    /// Planned completion time.
    pub fn planned_end(&self) -> SimTime {
        self.planned_start + self.budget
    }
}

/// A complete admission decision: one [`NodePlan`] per DAG node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestPlan {
    /// Which request this plan admits.
    pub request: RequestId,
    /// Plans indexed by DAG node.
    pub nodes: Vec<NodePlan>,
}

impl RequestPlan {
    /// Planned end-to-end completion (max node end).
    pub fn planned_makespan_end(&self) -> SimTime {
        self.nodes.iter().map(NodePlan::planned_end).max().unwrap_or(SimTime::ZERO)
    }

    /// Validates structural sanity against a DAG: every node planned, and
    /// no child planned to start before a parent's planned start.
    pub fn respects_dag(&self, dag: &mlp_model::ServiceDag) -> bool {
        if self.nodes.len() != dag.len() {
            return false;
        }
        dag.edges().iter().all(|&(p, c)| self.nodes[c].planned_start >= self.nodes[p].planned_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_model::{ServiceDag, ServiceId};

    fn np(machine: u32, start_ms: u64, budget_ms: u64) -> NodePlan {
        NodePlan {
            machine: MachineId(machine),
            planned_start: SimTime::from_millis(start_ms),
            budget: SimDuration::from_millis(budget_ms),
            grant: ResourceVector::new(1.0, 100.0, 10.0),
            reserved: true,
        }
    }

    #[test]
    fn planned_end_is_start_plus_budget() {
        assert_eq!(np(0, 10, 5).planned_end(), SimTime::from_millis(15));
    }

    #[test]
    fn makespan_is_max_end() {
        let plan = RequestPlan { request: RequestId(1), nodes: vec![np(0, 0, 10), np(1, 5, 20)] };
        assert_eq!(plan.planned_makespan_end(), SimTime::from_millis(25));
    }

    #[test]
    fn respects_dag_checks_ordering() {
        let mut dag = ServiceDag::new();
        dag.add_node(ServiceId(0), 1.0);
        dag.add_node(ServiceId(1), 1.0);
        dag.add_edge(0, 1);

        let good = RequestPlan { request: RequestId(1), nodes: vec![np(0, 0, 10), np(0, 10, 10)] };
        assert!(good.respects_dag(&dag));

        let bad = RequestPlan { request: RequestId(1), nodes: vec![np(0, 10, 10), np(0, 0, 10)] };
        assert!(!bad.respects_dag(&dag));

        let incomplete = RequestPlan { request: RequestId(1), nodes: vec![np(0, 0, 10)] };
        assert!(!incomplete.respects_dag(&dag));
    }
}
