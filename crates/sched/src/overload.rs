//! Overload resilience: admission control, retry budgets, circuit
//! breakers, and brownout degradation tiers.
//!
//! Everything here is a *pure, deterministic mechanism* — the engine owns
//! one [`OverloadRuntime`] per run (only when overload is enabled) and
//! feeds it scalar signals (queue depth, in-flight count, failures); the
//! mechanisms answer with verdicts and record every state change for the
//! invariant auditor. The runtime owns its own RNG fork, drawn from only
//! for retry-backoff jitter, so overload-off runs remain byte-identical to
//! the seed outputs.
//!
//! Degradation ladder under pressure (DESIGN.md §15): admission gates shed
//! the requests that could never meet their deadline, the retry budget
//! caps global re-execution work, per-service circuit breakers stop
//! feeding known-failing services, and brownout tiers degrade *quality*
//! (suppress resource stretch, shed optional DAG branches, tighten
//! admission) before the system sheds whole feasible requests.

use mlp_model::{RequestTypeId, ServiceId};
use mlp_sim::{SimRng, SimTime};
use mlp_trace::RequestId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Micro-token scale for the retry budget: integer units make the
/// conservation identity (`available + consumed == capacity + refilled`)
/// exact, with no float drift for the auditor to chase.
pub const TOKEN_UNIT: u64 = 1_000_000;

/// Tuning for the whole overload subsystem. `Copy` with scalar fields so
/// it can ride inside the engine's `Copy` experiment config; the engine
/// turns the surge fields into a workload `RateSchedule`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Master gate. `false` ⇒ no surge, no mechanisms, no RNG fork: the
    /// run is byte-identical to one that predates this subsystem.
    pub enabled: bool,
    /// Resilience mechanisms (admission/budget/breakers/brownout) active.
    /// `enabled && !resilience` applies the traffic surge alone — the
    /// baseline-under-flash-crowd configuration of `fig_overload`.
    pub resilience: bool,
    /// Peak offered-load multiplier of the flash crowd (1.0 = no surge).
    pub surge_multiplier: f64,
    /// When the flash crowd starts, seconds into the run.
    pub surge_start_s: f64,
    /// How long the flash crowd lasts, seconds.
    pub surge_duration_s: f64,
    /// Linear ramp on each edge of the surge, seconds.
    pub surge_ramp_s: f64,
    /// Admission: shed new arrivals once this many requests wait unplanned.
    pub max_queue_depth: u32,
    /// Admission: admit only if `slack × ideal_critical_path` still fits
    /// before the deadline (>1 demands headroom, 1.0 = exact feasibility).
    pub admission_slack: f64,
    /// Retry budget: sustained token refill rate (retries per second,
    /// cluster-wide).
    pub retry_rate_per_s: f64,
    /// Retry budget: bucket capacity (burst size, in tokens).
    pub retry_burst: f64,
    /// Base backoff for budgeted retries; jittered ±50% and doubled per
    /// attempt.
    pub retry_base_backoff_ms: f64,
    /// Breaker: observations needed before a trip decision.
    pub breaker_min_samples: u32,
    /// Breaker: recent failure-rate threshold that opens the circuit.
    pub breaker_failure_rate: f64,
    /// Breaker: how long an open circuit waits before probing, ms.
    pub breaker_open_ms: f64,
    /// Breaker: successful probes required to close from half-open.
    pub breaker_half_open_probes: u32,
    /// Brownout: pressure thresholds entering tiers 1..3.
    pub tier1_pressure: f64,
    /// Brownout: tier-2 (optional-branch shedding) entry threshold.
    pub tier2_pressure: f64,
    /// Brownout: tier-3 (tightened admission) entry threshold.
    pub tier3_pressure: f64,
    /// Brownout: pressure must fall this far below a tier's entry
    /// threshold before the tier is left (flap damping).
    pub tier_hysteresis: f64,
}

impl OverloadConfig {
    /// Subsystem fully off — the default for every pre-existing config.
    pub fn disabled() -> Self {
        OverloadConfig {
            enabled: false,
            resilience: false,
            surge_multiplier: 1.0,
            surge_start_s: 0.0,
            surge_duration_s: 0.0,
            surge_ramp_s: 0.0,
            max_queue_depth: 512,
            admission_slack: 1.0,
            retry_rate_per_s: 50.0,
            retry_burst: 100.0,
            retry_base_backoff_ms: 2.0,
            breaker_min_samples: 20,
            breaker_failure_rate: 0.5,
            breaker_open_ms: 1_000.0,
            breaker_half_open_probes: 3,
            tier1_pressure: 0.5,
            tier2_pressure: 0.75,
            tier3_pressure: 0.9,
            tier_hysteresis: 0.1,
        }
    }

    /// A flash crowd at `multiplier`× base load with the full resilience
    /// ladder engaged (the v-MLP arm of `fig_overload`).
    pub fn flash_crowd(multiplier: f64, start_s: f64, duration_s: f64) -> Self {
        OverloadConfig {
            enabled: true,
            resilience: true,
            surge_multiplier: multiplier,
            surge_start_s: start_s,
            surge_duration_s: duration_s,
            surge_ramp_s: (0.1 * duration_s).min(5.0),
            ..Self::disabled()
        }
    }

    /// The same flash crowd with every resilience mechanism off — what a
    /// baseline scheduler faces (the collapse arm of `fig_overload`).
    pub fn surge_only(multiplier: f64, start_s: f64, duration_s: f64) -> Self {
        OverloadConfig { resilience: false, ..Self::flash_crowd(multiplier, start_s, duration_s) }
    }

    /// Structural validation, reported through the engine's
    /// `Error::InvalidConfig`.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        let finite_pos = |v: f64| v > 0.0 && v.is_finite();
        if !finite_pos(self.surge_multiplier) {
            return Err(format!(
                "overload.surge_multiplier must be positive, got {}",
                self.surge_multiplier
            ));
        }
        if self.surge_multiplier > 1.0 && !finite_pos(self.surge_duration_s) {
            return Err(format!(
                "overload.surge_duration_s must be positive when surging, got {}",
                self.surge_duration_s
            ));
        }
        if self.surge_start_s < 0.0 || self.surge_ramp_s < 0.0 {
            return Err("overload surge start/ramp must be non-negative".into());
        }
        if self.max_queue_depth == 0 {
            return Err("overload.max_queue_depth must be at least 1".into());
        }
        if !(self.admission_slack >= 1.0 && self.admission_slack.is_finite()) {
            return Err(format!(
                "overload.admission_slack must be ≥ 1, got {}",
                self.admission_slack
            ));
        }
        if !finite_pos(self.retry_rate_per_s) || !finite_pos(self.retry_burst) {
            return Err("overload retry budget rate and burst must be positive".into());
        }
        if !finite_pos(self.retry_base_backoff_ms) {
            return Err("overload.retry_base_backoff_ms must be positive".into());
        }
        if self.breaker_min_samples == 0 || self.breaker_half_open_probes == 0 {
            return Err("overload breaker sample/probe counts must be at least 1".into());
        }
        if !(self.breaker_failure_rate > 0.0 && self.breaker_failure_rate <= 1.0) {
            return Err(format!(
                "overload.breaker_failure_rate must be in (0, 1], got {}",
                self.breaker_failure_rate
            ));
        }
        if !finite_pos(self.breaker_open_ms) {
            return Err("overload.breaker_open_ms must be positive".into());
        }
        let tiers = [self.tier1_pressure, self.tier2_pressure, self.tier3_pressure];
        if tiers.windows(2).any(|w| w[0] >= w[1])
            || tiers.iter().any(|&t| !(0.0..=1.0).contains(&t))
        {
            return Err("overload tier pressures must be increasing within [0, 1]".into());
        }
        if !(self.tier_hysteresis >= 0.0 && self.tier_hysteresis < self.tier1_pressure) {
            return Err("overload.tier_hysteresis must be non-negative and below tier1".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Retry budget
// ---------------------------------------------------------------------------

/// Global retry token bucket in integer micro-tokens.
///
/// Refill is an exact function of elapsed sim time from the bucket's
/// origin (no per-call rounding drift), so two runs that ask at the same
/// sim times see the same tokens — and the auditor can check conservation:
/// `available + consumed == capacity + refilled` at every instant.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    capacity_u: u64,
    available_u: u64,
    rate_u_per_s: u64,
    origin: SimTime,
    entitled_u: u64,
    consumed_u: u64,
    refilled_u: u64,
    denied: u64,
}

impl RetryBudget {
    /// A bucket holding `burst` tokens, refilling at `rate_per_s`.
    pub fn new(burst: f64, rate_per_s: f64) -> Self {
        let capacity_u = (burst.max(0.0) * TOKEN_UNIT as f64) as u64;
        RetryBudget {
            capacity_u,
            available_u: capacity_u,
            rate_u_per_s: (rate_per_s.max(0.0) * TOKEN_UNIT as f64) as u64,
            origin: SimTime::ZERO,
            entitled_u: 0,
            consumed_u: 0,
            refilled_u: 0,
            denied: 0,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed_us = now.since(self.origin).as_micros();
        let entitled = (elapsed_us as u128 * self.rate_u_per_s as u128 / 1_000_000) as u64;
        let delta = entitled.saturating_sub(self.entitled_u);
        self.entitled_u = entitled;
        let room = self.capacity_u - self.available_u;
        let add = delta.min(room);
        self.available_u += add;
        self.refilled_u += add;
    }

    /// Takes one retry token if available. Deterministic in `now`.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.available_u >= TOKEN_UNIT {
            self.available_u -= TOKEN_UNIT;
            self.consumed_u += TOKEN_UNIT;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Whole tokens currently available.
    pub fn tokens_available(&self) -> f64 {
        self.available_u as f64 / TOKEN_UNIT as f64
    }

    /// Retries granted so far.
    pub fn granted(&self) -> u64 {
        self.consumed_u / TOKEN_UNIT
    }

    /// Retries denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// The hard bound on grants up to `horizon_s`: burst + refill.
    pub fn grant_bound(&self, horizon_s: f64) -> u64 {
        (self.capacity_u + (horizon_s.max(0.0) * self.rate_u_per_s as f64) as u64) / TOKEN_UNIT
    }

    /// Auditor check (c): micro-token conservation. The identity is exact
    /// by construction; a violation means double-spend or phantom refill.
    pub fn conservation_holds(&self) -> bool {
        self.available_u <= self.capacity_u
            && self.refilled_u <= self.entitled_u
            && self.available_u + self.consumed_u == self.capacity_u + self.refilled_u
    }
}

// ---------------------------------------------------------------------------
// Circuit breakers
// ---------------------------------------------------------------------------

/// Circuit state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Traffic flows; outcomes are counted.
    Closed,
    /// Traffic to the service is rejected until the cool-down elapses.
    Open,
    /// A limited number of probe requests test recovery.
    HalfOpen,
}

/// One recorded state change, kept for the auditor's legality replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerTransition {
    /// The service whose circuit moved.
    pub service: ServiceId,
    /// When it moved.
    pub at: SimTime,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

#[derive(Debug, Clone)]
struct Breaker {
    state: BreakerState,
    successes: u32,
    failures: u32,
    opened_at: SimTime,
    probes_left: u32,
    probe_successes: u32,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            state: BreakerState::Closed,
            successes: 0,
            failures: 0,
            opened_at: SimTime::ZERO,
            probes_left: 0,
            probe_successes: 0,
        }
    }
}

/// All per-service breakers plus the shared transition log.
#[derive(Debug, Clone)]
pub struct BreakerBank {
    min_samples: u32,
    failure_rate: f64,
    open_ms: f64,
    half_open_probes: u32,
    breakers: BTreeMap<ServiceId, Breaker>,
    transitions: Vec<BreakerTransition>,
    opens: u64,
}

impl BreakerBank {
    /// Builds the bank from config thresholds.
    pub fn new(cfg: &OverloadConfig) -> Self {
        BreakerBank {
            min_samples: cfg.breaker_min_samples.max(1),
            failure_rate: cfg.breaker_failure_rate,
            open_ms: cfg.breaker_open_ms,
            half_open_probes: cfg.breaker_half_open_probes.max(1),
            breakers: BTreeMap::new(),
            transitions: Vec::new(),
            opens: 0,
        }
    }

    fn transition(&mut self, service: ServiceId, at: SimTime, to: BreakerState) {
        let b = self.breakers.get_mut(&service).expect("breaker exists");
        let from = b.state;
        b.state = to;
        if to == BreakerState::Open {
            b.opened_at = at;
            b.successes = 0;
            b.failures = 0;
            self.opens += 1;
        }
        if to == BreakerState::HalfOpen {
            b.probes_left = self.half_open_probes;
            b.probe_successes = 0;
        }
        if to == BreakerState::Closed {
            b.successes = 0;
            b.failures = 0;
        }
        self.transitions.push(BreakerTransition { service, at, from, to });
    }

    fn entry(&mut self, service: ServiceId) -> &mut Breaker {
        self.breakers.entry(service).or_insert_with(Breaker::new)
    }

    /// Records a failed span (or an overload shed attributed to the
    /// service) and trips the circuit when the recent failure rate
    /// crosses the threshold.
    pub fn record_failure(&mut self, service: ServiceId, now: SimTime) {
        let min_samples = self.min_samples;
        let threshold = self.failure_rate;
        let b = self.entry(service);
        match b.state {
            BreakerState::Open => {}
            BreakerState::HalfOpen => self.transition(service, now, BreakerState::Open),
            BreakerState::Closed => {
                b.failures += 1;
                Self::decay(b, min_samples);
                let total = b.successes + b.failures;
                if total >= min_samples && f64::from(b.failures) >= threshold * f64::from(total) {
                    self.transition(service, now, BreakerState::Open);
                }
            }
        }
    }

    /// Records a successful span.
    pub fn record_success(&mut self, service: ServiceId, now: SimTime) {
        let min_samples = self.min_samples;
        let probes = self.half_open_probes;
        let b = self.entry(service);
        match b.state {
            BreakerState::Open => {}
            BreakerState::HalfOpen => {
                b.probe_successes += 1;
                if b.probe_successes >= probes {
                    self.transition(service, now, BreakerState::Closed);
                }
            }
            BreakerState::Closed => {
                b.successes += 1;
                Self::decay(b, min_samples);
            }
        }
    }

    /// Halves both counters once the window grows stale, so the trip
    /// decision tracks *recent* failure rate without a timestamp ring.
    fn decay(b: &mut Breaker, min_samples: u32) {
        if b.successes + b.failures > 4 * min_samples {
            b.successes /= 2;
            b.failures /= 2;
        }
    }

    /// Advances time-based transitions (Open → HalfOpen after the
    /// cool-down). Called once per telemetry tick.
    pub fn tick(&mut self, now: SimTime) -> Vec<BreakerTransition> {
        let before = self.transitions.len();
        let due: Vec<ServiceId> = self
            .breakers
            .iter()
            .filter(|(_, b)| {
                b.state == BreakerState::Open
                    && now.since(b.opened_at).as_millis_f64() >= self.open_ms
            })
            .map(|(&s, _)| s)
            .collect();
        for s in due {
            self.transition(s, now, BreakerState::HalfOpen);
        }
        self.transitions[before..].to_vec()
    }

    /// Gate for a request whose DAG spans `services`: rejected if any
    /// circuit is open (or half-open with no probe slots left); otherwise
    /// admitted, consuming one probe slot per half-open service touched.
    pub fn gate(&mut self, services: impl Iterator<Item = ServiceId>) -> Result<(), ServiceId> {
        let mut probed: Vec<ServiceId> = Vec::new();
        for s in services {
            match self.breakers.get(&s) {
                None => {}
                Some(b) => match b.state {
                    BreakerState::Closed => {}
                    BreakerState::Open => return Err(s),
                    BreakerState::HalfOpen => {
                        if b.probes_left == 0 {
                            return Err(s);
                        }
                        probed.push(s);
                    }
                },
            }
        }
        for s in probed {
            self.entry(s).probes_left -= 1;
        }
        Ok(())
    }

    /// Current state of a service's circuit (Closed if never touched).
    pub fn state(&self, service: ServiceId) -> BreakerState {
        self.breakers.get(&service).map_or(BreakerState::Closed, |b| b.state)
    }

    /// Count of circuits currently not Closed.
    pub fn open_count(&self) -> usize {
        self.breakers.values().filter(|b| b.state != BreakerState::Closed).count()
    }

    /// Total Open trips so far.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// The full transition log, time-ordered per service.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Auditor check (b): replay the transition log. Every move must be
    /// one of Closed→Open, Open→HalfOpen, HalfOpen→Open, HalfOpen→Closed;
    /// per service the chain must start at Closed, stay continuous, and be
    /// time-ordered.
    pub fn check_legal(&self) -> Result<(), String> {
        let mut last: BTreeMap<ServiceId, (SimTime, BreakerState)> = BTreeMap::new();
        for t in &self.transitions {
            let legal = matches!(
                (t.from, t.to),
                (BreakerState::Closed, BreakerState::Open)
                    | (BreakerState::Open, BreakerState::HalfOpen)
                    | (BreakerState::HalfOpen, BreakerState::Open)
                    | (BreakerState::HalfOpen, BreakerState::Closed)
            );
            if !legal {
                return Err(format!(
                    "illegal breaker transition {:?} -> {:?} for service {:?}",
                    t.from, t.to, t.service
                ));
            }
            match last.get(&t.service) {
                None => {
                    if t.from != BreakerState::Closed {
                        return Err(format!(
                            "service {:?} first transition starts at {:?}, not Closed",
                            t.service, t.from
                        ));
                    }
                }
                Some(&(at, state)) => {
                    if t.from != state {
                        return Err(format!(
                            "service {:?} transition chain broken: {:?} -> {:?} after {:?}",
                            t.service, t.from, t.to, state
                        ));
                    }
                    if t.at < at {
                        return Err(format!(
                            "service {:?} transitions out of time order",
                            t.service
                        ));
                    }
                }
            }
            last.insert(t.service, (t.at, t.to));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Brownout tiers
// ---------------------------------------------------------------------------

/// Graceful-degradation ladder driven by the cluster pressure signal.
///
/// * **Tier 0** — normal operation.
/// * **Tier 1** — suppress resource-stretch healing (stop spending idle
///   headroom on latency polish).
/// * **Tier 2** — additionally shed optional DAG branches (side leaves) of
///   admitted requests.
/// * **Tier 3** — additionally halve the admission queue cap.
///
/// Tiers rise as soon as pressure crosses a threshold and fall only after
/// pressure drops `tier_hysteresis` below it, so the ladder cannot flap on
/// a noisy signal.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    enter: [f64; 3],
    hysteresis: f64,
    tier: u8,
    peak_pressure: f64,
    transitions: u64,
}

impl BrownoutController {
    /// Builds the controller from config thresholds.
    pub fn new(cfg: &OverloadConfig) -> Self {
        BrownoutController {
            enter: [cfg.tier1_pressure, cfg.tier2_pressure, cfg.tier3_pressure],
            hysteresis: cfg.tier_hysteresis,
            tier: 0,
            peak_pressure: 0.0,
            transitions: 0,
        }
    }

    /// Feeds one pressure sample; returns `Some((from, to))` on a tier
    /// change.
    pub fn on_tick(&mut self, pressure: f64) -> Option<(u8, u8)> {
        self.peak_pressure = self.peak_pressure.max(pressure);
        let mut target = 0u8;
        for (k, &th) in self.enter.iter().enumerate() {
            if pressure >= th {
                target = k as u8 + 1;
            }
        }
        let from = self.tier;
        if target > self.tier {
            self.tier = target;
        } else {
            while self.tier > target
                && pressure < self.enter[self.tier as usize - 1] - self.hysteresis
            {
                self.tier -= 1;
            }
        }
        if self.tier != from {
            self.transitions += 1;
            Some((from, self.tier))
        } else {
            None
        }
    }

    /// The tier currently in force.
    pub fn tier(&self) -> u8 {
        self.tier
    }

    /// Highest pressure sample seen.
    pub fn peak_pressure(&self) -> f64 {
        self.peak_pressure
    }

    /// Number of tier changes so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

/// The deterministic cluster-pressure signal in `[0, 1]`: a blend of
/// scheduler queue backlog (the leading indicator) and in-flight load
/// relative to nominal capacity (the lagging one).
pub fn pressure_signal(
    queue_depth: usize,
    max_queue_depth: u32,
    in_flight: usize,
    nominal_in_flight: usize,
) -> f64 {
    let q = queue_depth as f64 / f64::from(max_queue_depth.max(1));
    let l = in_flight as f64 / nominal_in_flight.max(1) as f64;
    (0.7 * q.min(1.0) + 0.3 * l.min(1.0)).clamp(0.0, 1.0)
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

/// What the admission gate decided for one arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionVerdict {
    /// Admitted; `slack_ms` is the deadline headroom beyond the ideal
    /// critical path.
    Admit {
        /// Deadline headroom beyond `slack × ideal_cp`, ms.
        slack_ms: f64,
    },
    /// Shed: the waiting queue is at (tier-adjusted) capacity.
    RejectQueueFull {
        /// Queue depth observed at the gate.
        depth: usize,
    },
    /// Shed: even the ideal critical path cannot meet the deadline.
    RejectInfeasible {
        /// Missing headroom, ms (positive = how late it would be).
        late_ms: f64,
    },
    /// Shed: a service in the request's DAG has an open circuit.
    RejectBreaker {
        /// The open service.
        service: ServiceId,
    },
}

/// One admitted request, logged so the auditor can re-derive feasibility
/// from the catalog and confirm `admitted ⇒ feasible at admission time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionRecord {
    /// The admitted request.
    pub request: RequestId,
    /// Its type (lets the auditor recompute the ideal critical path).
    pub rtype: RequestTypeId,
    /// Gate time.
    pub at: SimTime,
    /// Ideal critical-path estimate used by the gate, ms.
    pub ideal_cp_ms: f64,
    /// Absolute deadline.
    pub deadline: SimTime,
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Cap on the admission log the auditor replays (oldest entries drop
/// first; the drop count is kept so the auditor knows its view is a
/// suffix).
const ADMISSION_LOG_CAPACITY: usize = 65_536;

/// Per-run state of the overload subsystem. Built by the engine only when
/// `OverloadConfig::enabled`; owns the RNG fork for backoff jitter.
#[derive(Debug)]
pub struct OverloadRuntime {
    /// The config in force.
    pub cfg: OverloadConfig,
    /// Global retry token bucket.
    pub budget: RetryBudget,
    /// Per-service circuit breakers.
    pub breakers: BreakerBank,
    /// Degradation-tier controller.
    pub brownout: BrownoutController,
    rng: SimRng,
    /// Requests admitted through the gate.
    pub admitted: u64,
    /// Sheds by cause: queue cap, deadline infeasibility, open breaker.
    pub shed_queue: u64,
    /// Sheds because the ideal critical path missed the deadline.
    pub shed_infeasible: u64,
    /// Sheds because a DAG service's circuit was open.
    pub shed_breaker: u64,
    /// Optional DAG branches skipped under brownout tier ≥ 2.
    pub branch_sheds: u64,
    /// Admission log for auditor check (a).
    pub admission_log: Vec<AdmissionRecord>,
    /// Admission records dropped once the log hit its cap.
    pub admission_log_dropped: u64,
}

impl OverloadRuntime {
    /// Builds the runtime. `rng` must be a dedicated fork (the engine uses
    /// fork 3 of the root seed) so jitter draws never perturb the arrival
    /// or execution streams.
    pub fn new(cfg: OverloadConfig, rng: SimRng) -> Self {
        OverloadRuntime {
            cfg,
            budget: RetryBudget::new(cfg.retry_burst, cfg.retry_rate_per_s),
            breakers: BreakerBank::new(&cfg),
            brownout: BrownoutController::new(&cfg),
            rng,
            admitted: 0,
            shed_queue: 0,
            shed_infeasible: 0,
            shed_breaker: 0,
            branch_sheds: 0,
            admission_log: Vec::new(),
            admission_log_dropped: 0,
        }
    }

    /// Queue cap currently in force (tier 3 halves it).
    pub fn effective_queue_cap(&self) -> u32 {
        if self.brownout.tier() >= 3 {
            (self.cfg.max_queue_depth / 2).max(1)
        } else {
            self.cfg.max_queue_depth
        }
    }

    /// The enqueue-time admission gate. `services` iterates the request
    /// DAG's services for the breaker check; `ideal_cp_ms` is the
    /// zero-contention critical path of the request type.
    #[allow(clippy::too_many_arguments)] // one verdict needs the whole arrival picture
    pub fn admission(
        &mut self,
        now: SimTime,
        request: RequestId,
        rtype: RequestTypeId,
        queue_depth: usize,
        ideal_cp_ms: f64,
        deadline: SimTime,
        services: impl Iterator<Item = ServiceId>,
    ) -> AdmissionVerdict {
        if !self.cfg.resilience {
            self.admitted += 1;
            return AdmissionVerdict::Admit { slack_ms: f64::INFINITY };
        }
        if queue_depth >= self.effective_queue_cap() as usize {
            self.shed_queue += 1;
            return AdmissionVerdict::RejectQueueFull { depth: queue_depth };
        }
        let needed_ms = self.cfg.admission_slack * ideal_cp_ms;
        let remaining_ms = deadline.since(now.min(deadline)).as_millis_f64();
        if now >= deadline || needed_ms > remaining_ms {
            self.shed_infeasible += 1;
            return AdmissionVerdict::RejectInfeasible { late_ms: needed_ms - remaining_ms };
        }
        if let Err(service) = self.breakers.gate(services) {
            self.shed_breaker += 1;
            return AdmissionVerdict::RejectBreaker { service };
        }
        self.admitted += 1;
        if self.admission_log.len() >= ADMISSION_LOG_CAPACITY {
            self.admission_log.remove(0);
            self.admission_log_dropped += 1;
        }
        self.admission_log.push(AdmissionRecord { request, rtype, at: now, ideal_cp_ms, deadline });
        AdmissionVerdict::Admit { slack_ms: remaining_ms - needed_ms }
    }

    /// Asks the global budget for one retry token. With resilience off the
    /// budget is bypassed untouched (legacy unbounded behavior).
    pub fn try_retry_token(&mut self, now: SimTime) -> bool {
        if !self.cfg.resilience {
            return true;
        }
        self.budget.try_take(now)
    }

    /// Seeded-jitter exponential backoff for a budgeted retry: base × 2^attempt,
    /// scaled by a uniform factor in [0.5, 1.5). The only RNG consumer in
    /// the subsystem.
    pub fn retry_backoff_ms(&mut self, attempt: u32) -> f64 {
        let base = self.cfg.retry_base_backoff_ms * f64::from(1u32 << attempt.min(6));
        let jitter: f64 = self.rng.rng().gen_range(0.5..1.5);
        base * jitter
    }

    /// Per-tick update: advances breaker cool-downs and the brownout tier.
    /// Returns (tier change, new breaker transitions) for audit records.
    pub fn on_tick(
        &mut self,
        now: SimTime,
        pressure: f64,
    ) -> (Option<(u8, u8)>, Vec<BreakerTransition>) {
        if !self.cfg.resilience {
            return (None, Vec::new());
        }
        let breaker_moves = self.breakers.tick(now);
        let tier_move = self.brownout.on_tick(pressure);
        (tier_move, breaker_moves)
    }

    /// Total requests shed at the admission gate.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue + self.shed_infeasible + self.shed_breaker
    }

    /// Whether tier ≥ 1 currently suppresses stretch healing.
    pub fn suppress_stretch(&self) -> bool {
        self.cfg.resilience && self.brownout.tier() >= 1
    }

    /// Whether tier ≥ 2 currently sheds optional DAG branches.
    pub fn shed_optional_branches(&self) -> bool {
        self.cfg.resilience && self.brownout.tier() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_sim::SimDuration;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn config_presets_validate() {
        assert!(OverloadConfig::disabled().validate().is_ok());
        assert!(OverloadConfig::flash_crowd(3.0, 10.0, 20.0).validate().is_ok());
        assert!(OverloadConfig::surge_only(5.0, 10.0, 20.0).validate().is_ok());
        let mut bad = OverloadConfig::flash_crowd(3.0, 10.0, 20.0);
        bad.surge_multiplier = -1.0;
        assert!(bad.validate().is_err());
        bad = OverloadConfig::flash_crowd(3.0, 10.0, 20.0);
        bad.tier2_pressure = 0.2; // below tier1
        assert!(bad.validate().is_err());
        bad = OverloadConfig::flash_crowd(3.0, 10.0, 20.0);
        bad.breaker_failure_rate = 1.5;
        assert!(bad.validate().is_err());
        // A disabled config is valid whatever junk it carries.
        bad.enabled = false;
        assert!(bad.validate().is_ok());
    }

    #[test]
    fn retry_budget_enforces_burst_and_refill() {
        let mut b = RetryBudget::new(3.0, 2.0);
        assert!(b.try_take(ms(0)));
        assert!(b.try_take(ms(0)));
        assert!(b.try_take(ms(0)));
        assert!(!b.try_take(ms(0)), "burst exhausted");
        assert_eq!(b.denied(), 1);
        // 1 second refills 2 tokens.
        assert!(b.try_take(ms(1000)));
        assert!(b.try_take(ms(1000)));
        assert!(!b.try_take(ms(1000)));
        assert_eq!(b.granted(), 5);
        assert!(b.conservation_holds());
    }

    #[test]
    fn retry_budget_conserves_micro_tokens_exactly() {
        let mut b = RetryBudget::new(10.0, 3.7);
        let mut t = 0u64;
        for step in 1..500u64 {
            t += step % 37;
            b.try_take(ms(t));
            assert!(b.conservation_holds(), "conservation broken at t={t}");
        }
        assert!(b.granted() > 0);
        assert!(b.granted() <= b.grant_bound(t as f64 / 1000.0));
    }

    #[test]
    fn retry_budget_is_bit_reproducible() {
        let run = || {
            let mut b = RetryBudget::new(5.0, 1.3);
            (0..200u64).map(|i| b.try_take(ms(i * 117))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    fn trip(bank: &mut BreakerBank, svc: ServiceId, now: SimTime) {
        for _ in 0..40 {
            bank.record_failure(svc, now);
        }
        assert_eq!(bank.state(svc), BreakerState::Open);
    }

    #[test]
    fn breaker_full_cycle_is_legal() {
        let cfg = OverloadConfig::flash_crowd(3.0, 0.0, 10.0);
        let mut bank = BreakerBank::new(&cfg);
        let svc = ServiceId(4);
        // Mostly-successful traffic keeps the circuit closed.
        for _ in 0..100 {
            bank.record_success(svc, ms(1));
        }
        bank.record_failure(svc, ms(2));
        assert_eq!(bank.state(svc), BreakerState::Closed);
        // A failure burst trips it.
        trip(&mut bank, svc, ms(10));
        assert!(bank.gate([svc].into_iter()).is_err(), "open circuit rejects");
        // Cool-down: the tick moves it to HalfOpen.
        assert!(bank.tick(ms(500)).is_empty(), "not yet");
        let moves = bank.tick(ms(1200));
        assert_eq!(moves.len(), 1);
        assert_eq!(bank.state(svc), BreakerState::HalfOpen);
        // Probes flow (limited), successes close it.
        for _ in 0..cfg.breaker_half_open_probes {
            assert!(bank.gate([svc].into_iter()).is_ok());
            bank.record_success(svc, ms(1300));
        }
        assert_eq!(bank.state(svc), BreakerState::Closed);
        assert_eq!(bank.opens(), 1);
        bank.check_legal().expect("cycle must replay as legal");
    }

    #[test]
    fn half_open_failure_reopens() {
        let cfg = OverloadConfig::flash_crowd(3.0, 0.0, 10.0);
        let mut bank = BreakerBank::new(&cfg);
        let svc = ServiceId(9);
        trip(&mut bank, svc, ms(10));
        bank.tick(ms(2000));
        assert_eq!(bank.state(svc), BreakerState::HalfOpen);
        bank.record_failure(svc, ms(2001));
        assert_eq!(bank.state(svc), BreakerState::Open);
        assert_eq!(bank.opens(), 2);
        // Probe slots exhaust: with all probes consumed and the circuit
        // still HalfOpen, further traffic is rejected.
        bank.tick(ms(4000));
        for _ in 0..cfg.breaker_half_open_probes {
            assert!(bank.gate([svc].into_iter()).is_ok());
        }
        assert!(bank.gate([svc].into_iter()).is_err());
        bank.check_legal().expect("legal");
    }

    #[test]
    fn brownout_tiers_rise_fast_and_fall_with_hysteresis() {
        let cfg = OverloadConfig::flash_crowd(3.0, 0.0, 10.0);
        let mut b = BrownoutController::new(&cfg);
        assert_eq!(b.on_tick(0.3), None);
        assert_eq!(b.on_tick(0.6), Some((0, 1)));
        assert_eq!(b.on_tick(0.95), Some((1, 3)), "tiers can jump");
        // Pressure just below the threshold: hysteresis holds the tier.
        assert_eq!(b.on_tick(0.85), None);
        assert_eq!(b.tier(), 3);
        // Well below: steps down as far as hysteresis allows (0.62 holds
        // tier 1 but is under the 0.65 tier-2 hold threshold).
        assert_eq!(b.on_tick(0.62), Some((3, 1)));
        assert_eq!(b.on_tick(0.1), Some((1, 0)));
        assert_eq!(b.transitions(), 4);
        assert!((b.peak_pressure() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn pressure_signal_is_bounded_and_monotone() {
        assert_eq!(pressure_signal(0, 100, 0, 50), 0.0);
        assert_eq!(pressure_signal(1000, 100, 1000, 50), 1.0);
        let low = pressure_signal(10, 100, 5, 50);
        let high = pressure_signal(60, 100, 30, 50);
        assert!(low < high);
        assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high));
    }

    fn gate(
        rt: &mut OverloadRuntime,
        id: u64,
        now: SimTime,
        queue: usize,
        cp_ms: f64,
        deadline: SimTime,
    ) -> AdmissionVerdict {
        rt.admission(
            now,
            RequestId(id),
            RequestTypeId(0),
            queue,
            cp_ms,
            deadline,
            [ServiceId(1)].into_iter(),
        )
    }

    #[test]
    fn admission_gate_sheds_by_cause() {
        let cfg =
            OverloadConfig { max_queue_depth: 4, ..OverloadConfig::flash_crowd(3.0, 0.0, 10.0) };
        let mut rt = OverloadRuntime::new(cfg, SimRng::new(1).fork(3));
        // Feasible and under cap: admitted.
        let v = gate(&mut rt, 1, ms(0), 0, 20.0, ms(100));
        assert!(matches!(v, AdmissionVerdict::Admit { slack_ms } if slack_ms > 0.0));
        // Queue full.
        let v = gate(&mut rt, 2, ms(0), 4, 20.0, ms(100));
        assert_eq!(v, AdmissionVerdict::RejectQueueFull { depth: 4 });
        // Deadline-infeasible.
        let v = gate(&mut rt, 3, ms(90), 0, 20.0, ms(100));
        assert!(matches!(v, AdmissionVerdict::RejectInfeasible { late_ms } if late_ms > 0.0));
        // Open breaker on a DAG service.
        for _ in 0..40 {
            rt.breakers.record_failure(ServiceId(1), ms(50));
        }
        let v = gate(&mut rt, 4, ms(50), 0, 20.0, ms(200));
        assert_eq!(v, AdmissionVerdict::RejectBreaker { service: ServiceId(1) });
        assert_eq!(rt.admitted, 1);
        assert_eq!(rt.shed_total(), 3);
        assert_eq!(rt.admission_log.len(), 1, "only admits are logged");
    }

    #[test]
    fn tier3_halves_the_queue_cap() {
        let cfg =
            OverloadConfig { max_queue_depth: 10, ..OverloadConfig::flash_crowd(3.0, 0.0, 10.0) };
        let mut rt = OverloadRuntime::new(cfg, SimRng::new(1).fork(3));
        assert_eq!(rt.effective_queue_cap(), 10);
        rt.brownout.on_tick(0.95);
        assert_eq!(rt.effective_queue_cap(), 5);
        let v = gate(&mut rt, 1, ms(0), 6, 5.0, ms(1000));
        assert!(matches!(v, AdmissionVerdict::RejectQueueFull { .. }));
    }

    #[test]
    fn resilience_off_bypasses_every_mechanism() {
        let cfg = OverloadConfig::surge_only(3.0, 0.0, 10.0);
        let mut rt = OverloadRuntime::new(cfg, SimRng::new(1).fork(3));
        // Hopeless deadline, saturated queue: still admitted.
        let v = gate(&mut rt, 1, ms(500), 10_000, 1e9, ms(0));
        assert!(matches!(v, AdmissionVerdict::Admit { .. }));
        // Budget bypassed untouched.
        for i in 0..1000 {
            assert!(rt.try_retry_token(ms(i)));
        }
        assert_eq!(rt.budget.granted(), 0);
        assert!(!rt.suppress_stretch());
        assert!(!rt.shed_optional_branches());
        let (tier, moves) = rt.on_tick(ms(1), 1.0);
        assert!(tier.is_none() && moves.is_empty());
    }

    #[test]
    fn backoff_is_jittered_exponential_and_seeded() {
        let cfg = OverloadConfig::flash_crowd(3.0, 0.0, 10.0);
        let mut a = OverloadRuntime::new(cfg, SimRng::new(7).fork(3));
        let mut b = OverloadRuntime::new(cfg, SimRng::new(7).fork(3));
        let xs: Vec<f64> = (0..8).map(|k| a.retry_backoff_ms(k)).collect();
        let ys: Vec<f64> = (0..8).map(|k| b.retry_backoff_ms(k)).collect();
        assert_eq!(xs, ys, "same fork ⇒ same jitter sequence");
        for (k, &x) in xs.iter().enumerate() {
            let base = cfg.retry_base_backoff_ms * f64::from(1u32 << (k as u32).min(6));
            assert!(x >= 0.5 * base && x < 1.5 * base, "attempt {k}: {x} out of band");
        }
        let _ = SimDuration::from_millis_f64(xs[0]); // backoffs feed SimDuration
    }

    #[test]
    fn admission_log_is_bounded() {
        let cfg = OverloadConfig {
            max_queue_depth: u32::MAX,
            ..OverloadConfig::flash_crowd(2.0, 0.0, 5.0)
        };
        let mut rt = OverloadRuntime::new(cfg, SimRng::new(1).fork(3));
        for i in 0..(ADMISSION_LOG_CAPACITY as u64 + 10) {
            let v = gate(&mut rt, i, ms(0), 0, 1.0, ms(10_000));
            assert!(matches!(v, AdmissionVerdict::Admit { .. }));
        }
        assert_eq!(rt.admission_log.len(), ADMISSION_LOG_CAPACITY);
        assert_eq!(rt.admission_log_dropped, 10);
    }
}
