//! The scheduler interface the evaluation engine drives.

use crate::plan::{RequestInfo, RequestPlan};
use mlp_cluster::{Cluster, MachineId, ShardPool};
use mlp_model::RequestCatalog;
use mlp_net::NetworkModel;
use mlp_sim::{SimDuration, SimTime};
use mlp_trace::{AuditLog, MetricsRegistry, ProfileStore, RequestId, Span};

/// The read-only planning environment: everything per-node budget/grant
/// estimation consults. Split out of [`SchedulerCtx`] so planning can run
/// on shard workers that hold only *their shard's* machines — the full
/// ctx owns `&mut Cluster` and cannot cross a thread boundary in pieces.
/// All fields are shared references to `Sync` data, so a `PlanEnv` is
/// `Copy + Send + Sync` and one value can serve every worker of a tick.
#[derive(Clone, Copy)]
pub struct PlanEnv<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Historical execution profiles (the `s_i` matrices).
    pub profiles: &'a ProfileStore,
    /// Request catalog (DAGs, SLOs, volatility).
    pub catalog: &'a RequestCatalog,
    /// Communication model, for expected-delay planning.
    pub net: &'a NetworkModel,
}

/// Everything a scheduler may consult (and the ledgers it may write)
/// during a callback. Borrowed from the engine per call.
pub struct SchedulerCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The cluster — schedulers write reservations into machine ledgers.
    pub cluster: &'a mut Cluster,
    /// Historical execution profiles (the `s_i` matrices).
    pub profiles: &'a ProfileStore,
    /// Request catalog (DAGs, SLOs, volatility).
    pub catalog: &'a RequestCatalog,
    /// Communication model, for expected-delay planning.
    pub net: &'a NetworkModel,
    /// Metrics sink for scheduler internals.
    pub metrics: &'a MetricsRegistry,
    /// Decision-audit sink (no-op unless the run enables auditing).
    pub audit: &'a AuditLog,
}

impl<'a> SchedulerCtx<'a> {
    /// The read-only planning environment of this ctx. The returned value
    /// copies the shared references out of the ctx, so it does not borrow
    /// `self` — callers can keep using (and mutating through) the ctx
    /// while the env is alive.
    pub fn env(&self) -> PlanEnv<'a> {
        PlanEnv { now: self.now, profiles: self.profiles, catalog: self.catalog, net: self.net }
    }
}

/// Raised by the engine when a planned invocation is *late*: its planned
/// start has arrived but some dependency (or its communication) has not
/// finished (the Fig 5 misalignment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LateInfo {
    /// The late request.
    pub request: RequestId,
    /// DAG node that should have started.
    pub node: usize,
    /// Machine it is planned on.
    pub machine: MachineId,
    /// Its (missed) planned start.
    pub planned_start: SimTime,
}

/// Raised by the engine when a running service invocation *fails* (fault
/// injection: a transient fault or an executing-machine crash killed it).
/// The node is back in the ready state; the scheduler decides what to do
/// with it via [`Scheduler::on_node_failure`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailure {
    /// The request whose node failed.
    pub request: RequestId,
    /// DAG node index that failed.
    pub node: usize,
    /// Machine it was executing on.
    pub machine: MachineId,
    /// How many times this node had already been attempted *before* this
    /// failure (0 on the first failure).
    pub attempt: u32,
    /// When the failure surfaced.
    pub at: SimTime,
}

/// Corrective actions a self-healing scheduler may return from
/// [`Scheduler::on_late_invocation`], [`Scheduler::on_node_failure`], or
/// [`Scheduler::on_machine_failure`]. The engine applies them immediately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealingAction {
    /// Pull a planned-but-not-yet-invoked node forward: start it as soon
    /// as it is ready instead of at its original planned start (delay-slot
    /// fill with a *microservice* candidate, Section III-F).
    PromoteNode {
        /// Request owning the node.
        request: RequestId,
        /// DAG node index.
        node: usize,
        /// New (earlier) planned start.
        new_start: SimTime,
    },
    /// Multiply the resource grant of a *running* node by `factor > 1`,
    /// shortening its remaining execution proportionally to what the extra
    /// grant restores (resource stretch, Section III-F).
    StretchRunning {
        /// Request owning the running node.
        request: RequestId,
        /// DAG node index.
        node: usize,
        /// Grant multiplier (> 1).
        factor: f64,
    },
    /// Re-attempt a failed node on its planned machine after a backoff.
    Retry {
        /// Request owning the failed node.
        request: RequestId,
        /// DAG node index.
        node: usize,
        /// How long to wait before the re-attempt.
        backoff: SimDuration,
    },
    /// Move a node to a different machine with a new planned start. The
    /// scheduler has already rewritten its own ledgers/plan; this action
    /// synchronizes the engine's copy of the plan and re-arms the node's
    /// invocation events.
    Replan {
        /// Request owning the node.
        request: RequestId,
        /// DAG node index.
        node: usize,
        /// Destination machine.
        machine: MachineId,
        /// New planned start on that machine.
        new_start: SimTime,
    },
    /// Give up on a request entirely (deadline-aware load shedding or an
    /// exhausted retry budget). Running grants are released, all pending
    /// events are cancelled, and the request counts as unfinished.
    Abandon {
        /// The request to drop.
        request: RequestId,
    },
}

/// A request-scheduling scheme (Table VI). Implemented by the four
/// baselines here and by `mlp-core`'s v-MLP.
///
/// Lifecycle driven by the engine:
/// 1. [`on_arrival`](Scheduler::on_arrival) — request enters the scheme's
///    waiting queue.
/// 2. [`schedule`](Scheduler::schedule) — called after arrivals and
///    completions; returns admission plans for requests the scheme decided
///    to place now.
/// 3. [`on_span_start`](Scheduler::on_span_start) /
///    [`on_span_complete`](Scheduler::on_span_complete) — span lifecycle
///    notifications for bookkeeping.
/// 4. [`on_late_invocation`](Scheduler::on_late_invocation) — deviation
///    callback; self-healing schemes return corrective actions.
pub trait Scheduler {
    /// Scheme name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// A request arrived and awaits admission.
    fn on_arrival(&mut self, req: RequestInfo, ctx: &mut SchedulerCtx<'_>);

    /// Admission pass: place whichever waiting requests the scheme can.
    fn schedule(&mut self, ctx: &mut SchedulerCtx<'_>) -> Vec<RequestPlan>;

    /// Admission pass with a shard worker pool available. Schemes that
    /// partition their work by shard override this to fan placement out
    /// over the pool (with effects merged back in shard-index order so
    /// results are identical at any worker count); the default ignores
    /// the pool and runs the sequential [`schedule`](Scheduler::schedule).
    fn schedule_parallel(
        &mut self,
        ctx: &mut SchedulerCtx<'_>,
        pool: &ShardPool,
    ) -> Vec<RequestPlan> {
        let _ = pool;
        self.schedule(ctx)
    }

    /// A node's dependencies (and their communication) have all resolved:
    /// it can physically start from `at`. Self-healing schemes use this to
    /// know how far a candidate can be advanced.
    fn on_node_ready(
        &mut self,
        _request: RequestId,
        _node: usize,
        _at: SimTime,
        _ctx: &mut SchedulerCtx<'_>,
    ) {
    }

    /// A span actually invoked (started executing).
    fn on_span_start(&mut self, _request: RequestId, _node: usize, _ctx: &mut SchedulerCtx<'_>) {}

    /// A span finished. Self-healing schemes may return corrective
    /// actions — a span that completes *earlier* than its reserved budget
    /// leaves a resource vacancy that delay-slot candidates (typically its
    /// own children) can be advanced into (Section III-F).
    fn on_span_complete(
        &mut self,
        _span: &Span,
        _ctx: &mut SchedulerCtx<'_>,
    ) -> Vec<HealingAction> {
        Vec::new()
    }

    /// A whole request finished (all nodes done).
    fn on_request_complete(&mut self, _request: RequestId, _ctx: &mut SchedulerCtx<'_>) {}

    /// A planned invocation is late. Return corrective actions (empty for
    /// schemes without self-healing).
    fn on_late_invocation(
        &mut self,
        _late: LateInfo,
        _ctx: &mut SchedulerCtx<'_>,
    ) -> Vec<HealingAction> {
        Vec::new()
    }

    /// A running invocation failed (fault injection). The engine has
    /// already released its grant and reset the node to ready. Return
    /// corrective actions ([`HealingAction::Retry`] / [`Replan`](HealingAction::Replan) /
    /// [`Abandon`](HealingAction::Abandon)); if none reference the failed
    /// node or its request, the engine falls back to a bounded blind retry.
    fn on_node_failure(
        &mut self,
        _failure: NodeFailure,
        _ctx: &mut SchedulerCtx<'_>,
    ) -> Vec<HealingAction> {
        Vec::new()
    }

    /// A machine crashed. Its ledger has been wiped, every span running on
    /// it was killed (`orphans` lists them as `(request, node)` pairs), and
    /// the machine reports `is_up() == false` until it recovers. Fault-
    /// aware schemes re-plan displaced work onto surviving machines here;
    /// the default leaves recovery to the engine (wait for the machine).
    fn on_machine_failure(
        &mut self,
        _machine: MachineId,
        _orphans: &[(RequestId, usize)],
        _ctx: &mut SchedulerCtx<'_>,
    ) -> Vec<HealingAction> {
        Vec::new()
    }

    /// A request was abandoned (by this scheduler's own action or the
    /// engine's retry-budget fallback). Drop internal state and release any
    /// reservations still held for it.
    fn on_request_abandoned(&mut self, _request: RequestId, _ctx: &mut SchedulerCtx<'_>) {}

    /// The engine skipped a DAG node that will never run (brownout branch
    /// shedding under overload): it counts as done for dependency purposes
    /// and the request still completes. Schemes holding reservations for
    /// the node release them here.
    fn on_node_skipped(&mut self, _request: RequestId, _node: usize, _ctx: &mut SchedulerCtx<'_>) {}

    /// Number of requests still waiting for admission.
    fn waiting(&self) -> usize;
}
