//! Shared DAG-planning machinery used by all schemes.

use crate::plan::{NodePlan, RequestInfo, RequestPlan};
use crate::scheduler::{PlanEnv, SchedulerCtx};
use mlp_cluster::{Machine, MachineId};
use mlp_model::{Microservice, ResourceVector};
use mlp_sim::{FastHashMap, SimDuration, SimTime};

/// The full input of one ledger placement probe. Two probes with equal keys
/// against a ledger at the same write epoch are the same computation, so
/// their `might_fit` → `earliest_fit` → headroom triple answers bitwise
/// identically — which is what makes the cursor *exact* rather than a
/// heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ProbeKey {
    machine: MachineId,
    ready_us: u64,
    horizon_us: u64,
    budget_us: u64,
    grant_bits: [u64; 3],
}

impl ProbeKey {
    fn new(
        machine: MachineId,
        ready: SimTime,
        horizon_end: SimTime,
        budget: SimDuration,
        grant: &ResourceVector,
    ) -> Self {
        ProbeKey {
            machine,
            ready_us: ready.0,
            horizon_us: horizon_end.0,
            budget_us: budget.as_micros(),
            grant_bits: [grant.cpu.to_bits(), grant.mem.to_bits(), grant.io.to_bits()],
        }
    }
}

/// A placement cursor: memoized `earliest_fit` probes for the ledger scan.
///
/// An admission round probes every candidate machine once per node, and a
/// deferral-heavy round repeats near-identical probes for every queued
/// request of the same type (same budget, same grant, same `ready = now`
/// for root nodes). The cursor caches each probe's outcome keyed by its
/// full inputs plus the target ledger's write epoch
/// ([`ResourceLedger::epoch`](mlp_cluster::ResourceLedger::epoch)): a hit
/// with an unchanged epoch replays the memoized slot/headroom in O(1), and
/// any ledger write (reserve, unreserve, crash clear, prune) bumps the
/// epoch so stale entries can never be returned. Liveness (`is_up`) is
/// deliberately checked *outside* the cursor — machine recovery does not
/// touch the ledger, so it must not need an epoch bump to be seen.
///
/// Entries are only meaningful within one scheduling round (`ready` keys
/// on `now`), so [`begin_round`](Self::begin_round) drops them whenever
/// the round time moves — bounding the map at one round's probe count.
#[derive(Debug, Default)]
pub struct FitCursor {
    round: Option<SimTime>,
    entries: FastHashMap<ProbeKey, (u64, Option<(SimTime, f64)>)>,
}

impl FitCursor {
    /// An empty cursor. Allocation-free until the first ledger probe, so
    /// schemes that never use `LedgerEarliestFit` pay nothing for it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of a scheduling round at `now`, dropping entries
    /// from earlier rounds (their `ready`-derived keys can no longer match
    /// and would only grow the map).
    pub fn begin_round(&mut self, now: SimTime) {
        if self.round != Some(now) {
            self.round = Some(now);
            self.entries.clear();
        }
    }

    /// Cached probe entries (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no probes are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `might_fit` → `earliest_fit` → headroom probe against one
    /// machine's ledger, memoized. Returns the earliest feasible slot and
    /// the window's worst-fit headroom score, or `None` when the grant has
    /// no window before the horizon. The caller must have checked
    /// `m.is_up()` already.
    fn probe(
        &mut self,
        m: &Machine,
        ready: SimTime,
        horizon_end: SimTime,
        budget: SimDuration,
        grant: ResourceVector,
    ) -> Option<(SimTime, f64)> {
        let key = ProbeKey::new(m.id, ready, horizon_end, budget, &grant);
        let epoch = m.ledger.epoch();
        if let Some(&(cached_epoch, result)) = self.entries.get(&key) {
            if cached_epoch == epoch {
                return result;
            }
        }
        let result = if !m.ledger.might_fit(grant) {
            // `might_fit` is a conservative superset test: when it fails,
            // no window exists, which is exactly the `None` outcome.
            None
        } else {
            m.ledger.earliest_fit(ready, horizon_end, budget, grant).map(|slot| {
                let headroom =
                    m.ledger.available(slot, slot + budget).utilization_against(&m.capacity);
                (slot, headroom)
            })
        };
        self.entries.insert(key, (epoch, result));
        result
    }
}

/// How a scheme picks the machine for each node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MachinePolicy {
    /// Cycle through machines (FairSched).
    RoundRobin,
    /// Lowest instantaneous utilization at planning time (CurSched).
    LeastLoaded,
    /// Scan all machines' future ledgers and take the slot that starts
    /// earliest; requires the grant to fit for the whole budget
    /// (PartProfile / FullProfile / v-MLP).
    LedgerEarliestFit,
}

/// Per-node planning inputs a scheme provides to the builder.
///
/// Budgets and grants consult only the read-only [`PlanEnv`] (profiles,
/// catalog, network, now) — never the mutable cluster — which is what
/// lets shard workers evaluate policies concurrently during a parallel
/// admission pass.
pub trait PlanPolicy {
    /// Execution-time budget Δt for a node.
    fn budget(
        &self,
        node: usize,
        svc: &Microservice,
        work_factor: f64,
        env: &PlanEnv<'_>,
    ) -> SimDuration;

    /// Resource grant for a node.
    fn grant(&self, node: usize, svc: &Microservice, env: &PlanEnv<'_>) -> ResourceVector;

    /// Machine-selection policy.
    fn machine_policy(&self) -> MachinePolicy;

    /// Whether grants are written into machine ledgers.
    fn reserve(&self) -> bool;

    /// Planning horizon beyond `now`: a node that cannot be placed before
    /// `now + horizon` makes the whole request unplaceable this round.
    /// Ten seconds is far beyond any request's SLO — planning further out
    /// would only delay the inevitable violation while bloating ledgers.
    fn horizon(&self) -> SimDuration {
        SimDuration::from_secs(10)
    }
}

/// Plans every node of `req`'s DAG in topological order.
///
/// For each node the earliest feasible start is the latest parent's
/// planned end plus the expected caller→callee communication delay; the
/// machine policy then decides where (and for ledger policies, exactly
/// when) the node runs. Returns `None` if any node cannot be placed within
/// the policy's horizon — the caller decides whether to defer the request
/// (v-MLP's "switch `r_i` with `r_{i+1}`") or force-place it.
///
/// On success, reservations (if any) are already written to the ledgers;
/// [`unreserve_plan`] rolls them back.
pub fn plan_request(
    req: &RequestInfo,
    policy: &impl PlanPolicy,
    rr_cursor: &mut usize,
    fit: &mut FitCursor,
    ctx: &mut SchedulerCtx<'_>,
) -> Option<RequestPlan> {
    let env = ctx.env();
    let rtype = ctx.catalog.request(req.rtype);
    let dag = &rtype.dag;
    let order = dag.topo_order().expect("request DAGs are validated acyclic");
    let n_machines = ctx.cluster.len();
    assert!(n_machines > 0, "cannot plan on an empty cluster");

    let mut nodes: Vec<Option<NodePlan>> = vec![None; dag.len()];
    let horizon_end = ctx.now + policy.horizon();
    let mut reserved: Vec<(MachineId, SimTime, SimTime, ResourceVector)> = Vec::new();

    for &i in &order {
        let node = dag.node(i);
        let svc = ctx.catalog.services.get(node.service);
        let budget = policy.budget(i, svc, node.work_factor, &env);
        let grant = policy.grant(i, svc, &env);

        // Earliest start: all parents done + expected comm (assume the
        // conservative cross-machine delay; co-location is decided later).
        let mut ready = ctx.now;
        for p in dag.parents_iter(i) {
            let parent = nodes[p].as_ref().expect("topo order visits parents first");
            let comm = ctx.net.expected_delay(false, svc.comm);
            let t = parent.planned_end() + comm;
            if t > ready {
                ready = t;
            }
        }

        let placed = match policy.machine_policy() {
            MachinePolicy::RoundRobin => {
                let m = MachineId((*rr_cursor % n_machines) as u32);
                *rr_cursor += 1;
                Some((m, ready))
            }
            MachinePolicy::LeastLoaded => ctx.cluster.least_loaded().map(|m| (m, ready)),
            MachinePolicy::LedgerEarliestFit => {
                // Shard-first scan: only the request's home shard is
                // searched, unless it has no feasible window at all, in
                // which case the scan overflows to the other shards in
                // rotation order (cross-shard work stealing). With one
                // shard (the default) this is exactly a whole-cluster scan.
                //
                // Within a shard, earliest start wins; among machines that
                // can start at the same instant, prefer the one with the
                // most planned headroom in the window (worst-fit).
                // Spreading keeps slack for execution-time and
                // communication slips — packing tightly onto one machine
                // would turn every slip into the Fig 5 contention.
                let home = ctx.cluster.home_shard(req.id.0);
                let mut best: Option<(MachineId, SimTime, f64)> = None;
                let mut overflowed = false;
                for shard in ctx.cluster.shard_scan_order(home) {
                    for m in ctx.cluster.shard_machines(shard) {
                        if !m.is_up() {
                            continue; // crashed machines take no new plans
                        }
                        // The memoized availability-index + earliest-fit +
                        // headroom probe (see [`FitCursor`]): a repeated
                        // probe against an unchanged ledger replays its
                        // cached answer, so deferral-heavy rounds stop
                        // re-walking every timeline per queued request.
                        if let Some((slot, headroom)) =
                            fit.probe(m, ready, horizon_end, budget, grant)
                        {
                            let better = match best {
                                None => true,
                                Some((_, t, h)) => slot < t || (slot == t && headroom > h),
                            };
                            if better {
                                best = Some((m.id, slot, headroom));
                            }
                        }
                    }
                    if best.is_some() {
                        overflowed = shard != home;
                        break; // first shard with a window wins — no wider scan
                    }
                }
                if overflowed {
                    ctx.metrics.inc(mlp_trace::metrics::names::SHARD_OVERFLOWS);
                }
                best.map(|(m, t, _)| (m, t))
            }
        };

        let (machine, start) = match placed {
            Some(p) => p,
            None => {
                // Roll back reservations made for earlier nodes.
                for (m, from, to, amt) in reserved {
                    ctx.cluster.machine_mut(m).ledger.unreserve(from, to, amt);
                }
                return None;
            }
        };

        if policy.reserve() && budget > SimDuration::ZERO {
            let end = start + budget;
            ctx.cluster.machine_mut(machine).ledger.reserve(start, end, grant);
            reserved.push((machine, start, end, grant));
        }

        nodes[i] = Some(NodePlan {
            machine,
            planned_start: start,
            budget,
            grant,
            reserved: policy.reserve() && budget > SimDuration::ZERO,
        });
    }

    Some(RequestPlan {
        request: req.id,
        nodes: nodes.into_iter().map(|n| n.expect("all nodes planned")).collect(),
    })
}

/// Plans `req`'s DAG against a single shard's machines — the shard-local
/// arm of [`plan_request`], runnable on a worker thread.
///
/// `machines` is the shard's machine slice in ascending-id order (as
/// produced by `Cluster::machines_by_shard_mut`). The scan, tie-break,
/// reservation, and rollback logic are identical to `plan_request`'s
/// home-shard pass with `MachinePolicy::LedgerEarliestFit`; the one
/// difference is that there is **no cross-shard overflow** — a request
/// that does not fit in its home shard returns `None` and the caller
/// retries it sequentially at the barrier, where the whole cluster is
/// visible again. That keeps every worker's writes confined to machines
/// it owns, which is the entire determinism argument.
pub fn plan_request_in_shard(
    req: &RequestInfo,
    policy: &impl PlanPolicy,
    env: &PlanEnv<'_>,
    fit: &mut FitCursor,
    machines: &mut [&mut Machine],
) -> Option<RequestPlan> {
    let rtype = env.catalog.request(req.rtype);
    let dag = &rtype.dag;
    let order = dag.topo_order().expect("request DAGs are validated acyclic");
    if machines.is_empty() {
        return None;
    }

    let mut nodes: Vec<Option<NodePlan>> = vec![None; dag.len()];
    let horizon_end = env.now + policy.horizon();
    let mut reserved: Vec<(MachineId, SimTime, SimTime, ResourceVector)> = Vec::new();

    for &i in &order {
        let node = dag.node(i);
        let svc = env.catalog.services.get(node.service);
        let budget = policy.budget(i, svc, node.work_factor, env);
        let grant = policy.grant(i, svc, env);

        let mut ready = env.now;
        for p in dag.parents_iter(i) {
            let parent = nodes[p].as_ref().expect("topo order visits parents first");
            let comm = env.net.expected_delay(false, svc.comm);
            let t = parent.planned_end() + comm;
            if t > ready {
                ready = t;
            }
        }

        let mut best: Option<(MachineId, SimTime, f64)> = None;
        for m in machines.iter() {
            if !m.is_up() {
                continue;
            }
            if let Some((slot, headroom)) = fit.probe(m, ready, horizon_end, budget, grant) {
                let better = match best {
                    None => true,
                    Some((_, t, h)) => slot < t || (slot == t && headroom > h),
                };
                if better {
                    best = Some((m.id, slot, headroom));
                }
            }
        }

        let (machine, start) = match best {
            Some((m, t, _)) => (m, t),
            None => {
                for (m, from, to, amt) in reserved {
                    let idx = machines
                        .binary_search_by_key(&m, |mm| mm.id)
                        .expect("reserved on a shard machine");
                    machines[idx].ledger.unreserve(from, to, amt);
                }
                return None;
            }
        };

        if policy.reserve() && budget > SimDuration::ZERO {
            let end = start + budget;
            let idx = machines
                .binary_search_by_key(&machine, |mm| mm.id)
                .expect("placed on a shard machine");
            machines[idx].ledger.reserve(start, end, grant);
            reserved.push((machine, start, end, grant));
        }

        nodes[i] = Some(NodePlan {
            machine,
            planned_start: start,
            budget,
            grant,
            reserved: policy.reserve() && budget > SimDuration::ZERO,
        });
    }

    Some(RequestPlan {
        request: req.id,
        nodes: nodes.into_iter().map(|n| n.expect("all nodes planned")).collect(),
    })
}

/// Rolls back every reservation a plan wrote (when a plan is abandoned or
/// re-made by the self-healing module).
pub fn unreserve_plan(plan: &RequestPlan, ctx: &mut SchedulerCtx<'_>) {
    for np in &plan.nodes {
        if np.reserved && np.budget > SimDuration::ZERO {
            ctx.cluster.machine_mut(np.machine).ledger.unreserve(
                np.planned_start,
                np.planned_end(),
                np.grant,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_cluster::Cluster;
    use mlp_model::RequestCatalog;
    use mlp_net::NetworkModel;
    use mlp_trace::{AuditLog, MetricsRegistry, ProfileStore, RequestId};

    struct TestPolicy {
        policy: MachinePolicy,
        reserve: bool,
        budget_ms: u64,
        grant: ResourceVector,
    }

    impl PlanPolicy for TestPolicy {
        fn budget(&self, _n: usize, _s: &Microservice, _wf: f64, _e: &PlanEnv<'_>) -> SimDuration {
            SimDuration::from_millis(self.budget_ms)
        }
        fn grant(&self, _n: usize, _s: &Microservice, _e: &PlanEnv<'_>) -> ResourceVector {
            self.grant
        }
        fn machine_policy(&self) -> MachinePolicy {
            self.policy
        }
        fn reserve(&self) -> bool {
            self.reserve
        }
    }

    fn harness() -> (Cluster, RequestCatalog, NetworkModel, ProfileStore, MetricsRegistry) {
        (
            Cluster::homogeneous(4, ResourceVector::new(6.0, 32_000.0, 1_000.0)),
            RequestCatalog::paper(),
            NetworkModel::paper_default(),
            ProfileStore::new(),
            MetricsRegistry::new(),
        )
    }

    static NO_AUDIT: std::sync::OnceLock<AuditLog> = std::sync::OnceLock::new();

    fn req(catalog: &RequestCatalog, name: &str) -> RequestInfo {
        RequestInfo {
            id: RequestId(1),
            rtype: catalog.request_by_name(name).unwrap().id,
            arrival: SimTime::ZERO,
        }
    }

    macro_rules! ctx {
        ($cluster:expr, $cat:expr, $net:expr, $prof:expr, $met:expr) => {
            SchedulerCtx {
                now: SimTime::ZERO,
                cluster: &mut $cluster,
                profiles: &$prof,
                catalog: &$cat,
                net: &$net,
                metrics: &$met,
                audit: NO_AUDIT.get_or_init(AuditLog::disabled),
            }
        };
    }

    #[test]
    fn round_robin_plans_all_nodes() {
        let (mut cluster, cat, net, prof, met) = harness();
        let mut ctx = ctx!(cluster, cat, net, prof, met);
        let p = TestPolicy {
            policy: MachinePolicy::RoundRobin,
            reserve: false,
            budget_ms: 10,
            grant: ResourceVector::new(1.0, 100.0, 10.0),
        };
        let mut cursor = 0;
        let r = req(&cat, "compose-post");
        let plan = plan_request(&r, &p, &mut cursor, &mut FitCursor::new(), &mut ctx).unwrap();
        let dag = &cat.request_by_name("compose-post").unwrap().dag;
        assert_eq!(plan.nodes.len(), dag.len());
        assert!(plan.respects_dag(dag));
        // Round-robin cycles machines.
        assert_ne!(plan.nodes[0].machine, plan.nodes[1].machine);
    }

    #[test]
    fn dependencies_are_sequenced_with_comm_gaps() {
        let (mut cluster, cat, net, prof, met) = harness();
        let mut ctx = ctx!(cluster, cat, net, prof, met);
        let p = TestPolicy {
            policy: MachinePolicy::LedgerEarliestFit,
            reserve: true,
            budget_ms: 20,
            grant: ResourceVector::new(1.0, 100.0, 10.0),
        };
        let mut cursor = 0;
        let r = req(&cat, "read-user-timeline"); // 3-node chain
        let plan = plan_request(&r, &p, &mut cursor, &mut FitCursor::new(), &mut ctx).unwrap();
        // Child starts strictly after parent's planned end (comm gap > 0).
        let dag = &cat.request_by_name("read-user-timeline").unwrap().dag;
        for &(a, b) in dag.edges() {
            assert!(plan.nodes[b].planned_start > plan.nodes[a].planned_end());
        }
    }

    #[test]
    fn ledger_policy_avoids_overcommit() {
        let (mut cluster, cat, net, prof, met) = harness();
        // Fill machine ledgers almost completely for the next 30 s.
        for m in cluster.machines_mut() {
            m.ledger.reserve(
                SimTime::ZERO,
                SimTime::from_secs(30),
                ResourceVector::new(5.5, 31_000.0, 950.0),
            );
        }
        let mut ctx = ctx!(cluster, cat, net, prof, met);
        let p = TestPolicy {
            policy: MachinePolicy::LedgerEarliestFit,
            reserve: true,
            budget_ms: 10,
            grant: ResourceVector::new(2.0, 500.0, 50.0), // does not fit anywhere
        };
        let mut cursor = 0;
        let r = req(&cat, "read-user-timeline");
        assert!(plan_request(&r, &p, &mut cursor, &mut FitCursor::new(), &mut ctx).is_none());
    }

    #[test]
    fn failed_plan_rolls_back_reservations() {
        let (mut cluster, cat, net, prof, met) = harness();
        // Only machine 0 has room, and only enough for ~1 concurrent node;
        // a wide DAG will fail part-way and must roll back.
        for m in cluster.machines_mut() {
            let block = if m.id.0 == 0 {
                ResourceVector::new(4.0, 30_000.0, 900.0)
            } else {
                ResourceVector::new(6.0, 32_000.0, 1_000.0)
            };
            m.ledger.reserve(SimTime::ZERO, SimTime::from_secs(40), block);
        }
        let baseline_avail: Vec<ResourceVector> = cluster
            .machines()
            .iter()
            .map(|m| m.ledger.available(SimTime::ZERO, SimTime::from_secs(30)))
            .collect();
        let mut ctx = ctx!(cluster, cat, net, prof, met);
        let p = TestPolicy {
            policy: MachinePolicy::LedgerEarliestFit,
            reserve: true,
            budget_ms: 10_000, // long budgets so concurrent branches collide
            grant: ResourceVector::new(1.5, 1_000.0, 80.0),
        };
        let mut cursor = 0;
        let r = req(&cat, "compose-post"); // wide fan-out
        let result = plan_request(&r, &p, &mut cursor, &mut FitCursor::new(), &mut ctx);
        assert!(result.is_none(), "expected unplaceable");
        // Ledgers restored exactly.
        for (m, before) in ctx.cluster.machines().iter().zip(baseline_avail) {
            let after = m.ledger.available(SimTime::ZERO, SimTime::from_secs(30));
            assert_eq!(after, before, "machine {:?} ledger not rolled back", m.id);
        }
    }

    #[test]
    fn placement_stays_in_home_shard_when_it_fits() {
        let (mut cluster, cat, net, prof, met) = harness();
        cluster = cluster.with_shards(2, mlp_cluster::ShardPolicy::RoundRobin);
        let mut ctx = ctx!(cluster, cat, net, prof, met);
        let p = TestPolicy {
            policy: MachinePolicy::LedgerEarliestFit,
            reserve: true,
            budget_ms: 10,
            grant: ResourceVector::new(1.0, 100.0, 10.0),
        };
        let mut cursor = 0;
        let r = req(&cat, "read-user-timeline"); // RequestId(1) → home shard 1
        let plan = plan_request(&r, &p, &mut cursor, &mut FitCursor::new(), &mut ctx).unwrap();
        for np in &plan.nodes {
            assert_eq!(ctx.cluster.shard_of(np.machine), mlp_cluster::ShardId(1));
        }
        assert_eq!(met.counter(mlp_trace::metrics::names::SHARD_OVERFLOWS), 0);
    }

    #[test]
    fn saturated_home_shard_overflows_to_neighbor() {
        let (mut cluster, cat, net, prof, met) = harness();
        cluster = cluster.with_shards(2, mlp_cluster::ShardPolicy::RoundRobin);
        // Fill every ledger in shard 1 (odd machine ids) for a long time.
        for m in cluster.machines_mut() {
            if m.id.0 % 2 == 1 {
                m.ledger.reserve(
                    SimTime::ZERO,
                    SimTime::from_secs(60),
                    ResourceVector::new(6.0, 32_000.0, 1_000.0),
                );
            }
        }
        let mut ctx = ctx!(cluster, cat, net, prof, met);
        let p = TestPolicy {
            policy: MachinePolicy::LedgerEarliestFit,
            reserve: true,
            budget_ms: 10,
            grant: ResourceVector::new(1.0, 100.0, 10.0),
        };
        let mut cursor = 0;
        let r = req(&cat, "read-user-timeline"); // home shard 1 is saturated
        let plan = plan_request(&r, &p, &mut cursor, &mut FitCursor::new(), &mut ctx).unwrap();
        for np in &plan.nodes {
            assert_eq!(
                ctx.cluster.shard_of(np.machine),
                mlp_cluster::ShardId(0),
                "work must be stolen by the overflow shard"
            );
        }
        assert!(met.counter(mlp_trace::metrics::names::SHARD_OVERFLOWS) > 0);
    }

    #[test]
    fn shard_local_plan_matches_full_plan_bitwise() {
        // When the home shard has room, plan_request never leaves it — so
        // the shard-local planner (run on just that shard's machines) must
        // produce the byte-identical plan and ledger writes.
        let (cluster, cat, net, prof, met) = harness();
        let mut full = cluster.clone().with_shards(2, mlp_cluster::ShardPolicy::RoundRobin);
        let mut local = full.clone();
        let p = TestPolicy {
            policy: MachinePolicy::LedgerEarliestFit,
            reserve: true,
            budget_ms: 25,
            grant: ResourceVector::new(1.0, 100.0, 10.0),
        };
        let r = req(&cat, "read-user-timeline"); // RequestId(1) → home shard 1

        let mut ctx = ctx!(full, cat, net, prof, met);
        let mut cursor = 0;
        let reference = plan_request(&r, &p, &mut cursor, &mut FitCursor::new(), &mut ctx).unwrap();

        let home = local.home_shard(r.id.0).0 as usize;
        let env = PlanEnv { now: SimTime::ZERO, profiles: &prof, catalog: &cat, net: &net };
        let mut by_shard = local.machines_by_shard_mut();
        let shard_plan =
            plan_request_in_shard(&r, &p, &env, &mut FitCursor::new(), &mut by_shard[home])
                .unwrap();
        drop(by_shard);

        assert_eq!(shard_plan, reference);
        for (a, b) in full.machines().iter().zip(local.machines()) {
            let wa = a.ledger.available(SimTime::ZERO, SimTime::from_secs(30));
            let wb = b.ledger.available(SimTime::ZERO, SimTime::from_secs(30));
            assert_eq!(wa, wb, "ledger divergence on {:?}", a.id);
        }
    }

    #[test]
    fn shard_local_plan_rolls_back_on_failure() {
        let (cluster, cat, net, prof, _met) = harness();
        let mut local = cluster.with_shards(2, mlp_cluster::ShardPolicy::RoundRobin);
        // Saturate shard 1 (odd ids) so the shard-local pass must fail.
        for m in local.machines_mut() {
            if m.id.0 % 2 == 1 {
                m.ledger.reserve(
                    SimTime::ZERO,
                    SimTime::from_secs(60),
                    ResourceVector::new(6.0, 32_000.0, 1_000.0),
                );
            }
        }
        let baseline: Vec<ResourceVector> = local
            .machines()
            .iter()
            .map(|m| m.ledger.available(SimTime::ZERO, SimTime::from_secs(30)))
            .collect();
        let p = TestPolicy {
            policy: MachinePolicy::LedgerEarliestFit,
            reserve: true,
            budget_ms: 10,
            grant: ResourceVector::new(1.0, 100.0, 10.0),
        };
        let r = req(&cat, "read-user-timeline");
        let home = local.home_shard(r.id.0).0 as usize;
        let env = PlanEnv { now: SimTime::ZERO, profiles: &prof, catalog: &cat, net: &net };
        let mut by_shard = local.machines_by_shard_mut();
        assert!(plan_request_in_shard(&r, &p, &env, &mut FitCursor::new(), &mut by_shard[home])
            .is_none());
        drop(by_shard);
        for (m, before) in local.machines().iter().zip(baseline) {
            let after = m.ledger.available(SimTime::ZERO, SimTime::from_secs(30));
            assert_eq!(after, before, "machine {:?} not rolled back", m.id);
        }
    }

    #[test]
    fn unreserve_plan_roundtrips() {
        let (mut cluster, cat, net, prof, met) = harness();
        let mut ctx = ctx!(cluster, cat, net, prof, met);
        let p = TestPolicy {
            policy: MachinePolicy::LedgerEarliestFit,
            reserve: true,
            budget_ms: 50,
            grant: ResourceVector::new(1.0, 100.0, 10.0),
        };
        let mut cursor = 0;
        let r = req(&cat, "basicSearch");
        let plan = plan_request(&r, &p, &mut cursor, &mut FitCursor::new(), &mut ctx).unwrap();
        unreserve_plan(&plan, &mut ctx);
        for m in ctx.cluster.machines() {
            let avail = m.ledger.available(SimTime::ZERO, SimTime::from_secs(10));
            assert_eq!(avail, m.capacity, "reservations leaked on {:?}", m.id);
        }
    }
}
