//! Head-to-head of all five Table VI schemes on one workload — a single
//! row of the paper's evaluation grid, printed as a table.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison [l1|l2|l3]
//! ```

use v_mlp::prelude::*;

fn main() {
    let pattern = match std::env::args().nth(1).as_deref() {
        Some("l2") => WorkloadPattern::L2Fluctuating,
        Some("l3") => WorkloadPattern::L3PeriodicWide,
        _ => WorkloadPattern::L1Pulse,
    };
    println!("comparing all schemes on pattern {} …\n", pattern.label());

    let rows: Vec<Vec<String>> = Scheme::PAPER
        .into_iter()
        .map(|scheme| {
            let config = ExperimentConfig {
                machines: 12,
                max_rate: 84.0,
                horizon_s: 60.0,
                pattern,
                ..ExperimentConfig::paper_default(scheme)
            };
            let r = Experiment::from_config(config).run().expect("config is valid");
            vec![
                scheme.label().to_string(),
                report::f(r.latency_ms[0]),
                report::f(r.latency_ms[1]),
                report::f(r.latency_ms[2]),
                format!("{:.2}%", r.violation_rate * 100.0),
                format!("{:.1}%", r.mean_utilization * 100.0),
                format!("{:.1}", r.throughput()),
            ]
        })
        .collect();

    print!(
        "{}",
        report::table(
            &format!("Scheme comparison, pattern {} (balanced mix)", pattern.label()),
            &["scheme", "p50 ms", "p90 ms", "p99 ms", "violations", "util", "req/s"],
            &rows,
        )
    );
}
