//! SocialNetwork scenario: a write-heavy stream (compose-post, High V_r)
//! mixed with timeline reads (Low V_r) under the fluctuating L2 workload,
//! comparing v-MLP against the fair scheduler.
//!
//! This is the workload the paper's introduction motivates: the same
//! services serve volatile writes and stable reads, and a scheduler that
//! ignores the difference lets the writes' variance poison the reads'
//! tails.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use v_mlp::prelude::*;

fn run(scheme: Scheme, high_ratio: f64) -> ExperimentResult {
    let config = ExperimentConfig {
        machines: 12,
        max_rate: 60.0,
        horizon_s: 40.0,
        pattern: WorkloadPattern::L2Fluctuating,
        // compose-post (high) vs timeline reads (low/mid split).
        mix: MixSpec::HighRatio(high_ratio),
        ..ExperimentConfig::paper_default(scheme)
    };
    Experiment::from_config(config).run().expect("config is valid")
}

fn main() {
    println!("SocialNetwork: compose-post writes vs timeline reads (L2 fluctuating)\n");
    for ratio in [0.2, 0.5] {
        println!("--- {:.0}% high-volatility writes ---", ratio * 100.0);
        for scheme in [Scheme::FairSched, Scheme::VMlp] {
            let r = run(scheme, ratio);
            let low = r.violation_by_class[0] * 100.0;
            let high = r.violation_by_class[2] * 100.0;
            println!(
                "{:10}  p99 {:7.1} ms | violations: low-V_r {:4.1}%, high-V_r {:4.1}% | util {:.1}%",
                r.config.scheme.display_name(),
                r.latency_ms[2],
                low,
                high,
                r.mean_utilization * 100.0,
            );
        }
        println!();
    }
    let catalog = RequestCatalog::paper();
    let reads = catalog.requests_in_class(VolatilityClass::Low);
    println!(
        "(the read path invokes {} request types; the volatile writes share \
         nginx and post-storage with them — that sharing is what FairSched mishandles)",
        reads.len()
    );
}
