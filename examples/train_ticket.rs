//! TrainTicket scenario: advanced search (getCheapest, High V_r) against
//! basic search (basicSearch, Mid V_r) under the periodic wide-peak L3
//! workload — the paper's industrial benchmark with its hardest pattern.
//!
//! Compares the two profile-driven schemes: PartProfile (GrandSLAm-style)
//! and v-MLP, showing what the volatility-banded Δt and the self-healing
//! module buy during sustained plateaus.
//!
//! ```sh
//! cargo run --release --example train_ticket
//! ```

use v_mlp::prelude::*;

fn main() {
    println!("TrainTicket: getCheapest vs basicSearch under L3 wide peaks\n");
    let catalog = RequestCatalog::paper();
    for name in ["getCheapest", "basicSearch"] {
        let rt = catalog.request_by_name(name).unwrap();
        println!(
            "  {:12} V_r={:.2} ({:?}), {} services, SLO {:.0} ms",
            rt.name,
            rt.volatility,
            rt.class(),
            rt.dag.len(),
            rt.slo_ms
        );
    }
    println!();

    for (label, class) in [
        ("mid-V_r stream (basicSearch)", VolatilityClass::Mid),
        ("high-V_r stream (getCheapest + compose-post)", VolatilityClass::High),
    ] {
        println!("--- {label} ---");
        for scheme in [Scheme::PartProfile, Scheme::VMlp] {
            let config = ExperimentConfig {
                machines: 12,
                max_rate: 24.0,
                horizon_s: 40.0,
                pattern: WorkloadPattern::L3PeriodicWide,
                mix: MixSpec::SingleClass(class),
                ..ExperimentConfig::paper_default(scheme)
            };
            let r = Experiment::from_config(config).run().expect("config is valid");
            let (slots, stretches, _) = r.healing;
            println!(
                "{:12}  p50 {:6.1} ms  p99 {:7.1} ms  violations {:5.2}%  healing {}+{}",
                r.config.scheme.display_name(),
                r.latency_ms[0],
                r.latency_ms[2],
                r.violation_rate * 100.0,
                slots,
                stretches,
            );
        }
        println!();
    }
}
