//! The full Fig 8 trace-driven workflow as a downstream user would run it:
//! profile → persist → simulate → export spans for a tracing UI.
//!
//! ```sh
//! cargo run --release --example trace_workflow
//! ```

use std::path::PathBuf;
use v_mlp::engine::profiling::warm_profiles;
use v_mlp::prelude::*;
use v_mlp::sim::SimRng;
use v_mlp::trace::zipkin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("vmlp-workflow-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let catalog = RequestCatalog::paper();

    // 1. Workload characterization: profile the benchmarks and store the
    //    historical traces (the left half of Fig 8).
    let profiles = warm_profiles(&catalog, 100, &mut SimRng::new(2022));
    let profile_path: PathBuf = dir.join("profiles.json");
    traceio::save_profiles(&profile_path, &profiles, 2022, 100)?;
    println!("profiled {} service classes → {}", profiles.services().len(), profile_path.display());

    // 2. Reload the stored traces (a later session, a different machine…).
    let loaded = traceio::load_profiles(&profile_path)?;
    println!(
        "reloaded trace v{} with {} services",
        loaded.version,
        loaded.profiles.services().len()
    );

    // 3. Trace-driven simulation (the right half of Fig 8).
    let cfg = ExperimentConfig {
        machines: 10,
        max_rate: 60.0,
        horizon_s: 20.0,
        pattern: WorkloadPattern::L2Fluctuating,
        ..ExperimentConfig::paper_default(Scheme::VMlp)
    };
    let (result, raw) = Experiment::from_config(cfg).catalog(&catalog).run_full()?;
    println!(
        "simulated {} requests: p99 {:.1} ms, violations {:.2}%",
        result.completed,
        result.latency_ms[2],
        result.violation_rate * 100.0
    );

    // 4. Persist the experiment result…
    let result_path = dir.join("experiment.json");
    traceio::save_experiment(&result_path, &result)?;
    println!("experiment metrics → {}", result_path.display());

    // 5. …and export the spans in Zipkin v2 format for any tracing UI.
    let spans = zipkin::export(&raw.collector, &catalog);
    let zipkin_path = dir.join("spans.zipkin.json");
    std::fs::write(&zipkin_path, zipkin::to_json(&spans).expect("serializable"))?;
    println!("{} spans in Zipkin v2 format → {}", spans.len(), zipkin_path.display());

    // Tidy up the demo directory.
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
