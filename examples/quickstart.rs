//! Quickstart: run one v-MLP experiment end-to-end and print the metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use v_mlp::prelude::*;

fn main() {
    // The paper's evaluation setup, scaled to a laptop: a homogeneous
    // simulated cluster, the balanced five-type request mix of Table V,
    // and the L1 pulse workload of Fig 9.
    let config = ExperimentConfig {
        machines: 12,
        max_rate: 80.0,
        horizon_s: 30.0,
        ..ExperimentConfig::paper_default(Scheme::VMlp)
    };

    println!("running v-MLP on {} machines at {} req/s peak…", config.machines, config.max_rate);
    let result: ExperimentResult = Experiment::from_config(config).run().expect("config is valid");

    println!("arrived:              {}", result.arrived);
    println!("completed:            {}", result.completed);
    println!("throughput:           {:.1} req/s", result.throughput());
    println!(
        "latency p50/p90/p99:  {:.1} / {:.1} / {:.1} ms",
        result.latency_ms[0], result.latency_ms[1], result.latency_ms[2]
    );
    println!("SLO violations:       {:.2}%", result.violation_rate * 100.0);
    println!("mean cluster util:    {:.1}%", result.mean_utilization * 100.0);
    let (slots, stretches, switches) = result.healing;
    println!("self-healing:         {slots} delay-slot fills, {stretches} stretches, {switches} queue switches");

    // The volatility metric that drives all of v-MLP's decisions:
    let catalog = RequestCatalog::paper();
    println!("\nrequest volatility (Table V):");
    for rt in &catalog.requests {
        let v = Volatility::new(rt.volatility);
        println!("  {:22} V_r = {:.2}  ({:?})", rt.name, v.value(), v.band());
    }
}
