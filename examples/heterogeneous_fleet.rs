//! Heterogeneous-fleet extension: the paper evaluates a homogeneous
//! 100-machine cluster; real fleets mix machine generations. This example
//! runs the same workload on a two-tier fleet (half the machines at 50 %
//! capacity) and shows that ledger-driven schemes adapt — their per-machine
//! reservations see each machine's true capacity — while FairSched's fixed
//! equal slices mis-size on both tiers.
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

use v_mlp::prelude::*;

fn run(scheme: Scheme, two_tier: bool) -> ExperimentResult {
    let mut cfg = ExperimentConfig {
        machines: 12,
        max_rate: 48.0,
        horizon_s: 40.0,
        pattern: WorkloadPattern::L2Fluctuating,
        ..ExperimentConfig::paper_default(scheme)
    };
    if two_tier {
        // Same *total* capacity as 9 homogeneous machines, shaped 6 big +
        // 6 half-size — the scheduling problem is harder, the raw capacity
        // comparable.
        cfg = cfg.with_small_tier(6, 0.5);
    } else {
        cfg.machines = 9;
    }
    Experiment::from_config(cfg).run().expect("config is valid")
}

fn main() {
    println!("same total capacity, homogeneous (9×1.0) vs two-tier (6×1.0 + 6×0.5):\n");
    println!(
        "{:12} {:>14} {:>14} {:>12} {:>12}",
        "scheme", "p99 homog", "p99 two-tier", "viol homog", "viol 2-tier"
    );
    for scheme in [Scheme::FairSched, Scheme::CurSched, Scheme::PartProfile, Scheme::VMlp] {
        let homog = run(scheme, false);
        let tier = run(scheme, true);
        println!(
            "{:12} {:>11.1} ms {:>11.1} ms {:>11.2}% {:>11.2}%",
            scheme.label(),
            homog.latency_ms[2],
            tier.latency_ms[2],
            homog.violation_rate * 100.0,
            tier.violation_rate * 100.0,
        );
    }
    println!(
        "\n(ledger-driven schemes read each machine's capacity; FairSched's equal\n\
         slice is computed from the first machine and mis-fits the small tier)"
    );
}
