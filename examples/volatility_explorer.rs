//! Volatility explorer: decomposes each request type's `V_r` into its
//! per-service `I·S·C` terms (Table II) and shows how the self-organizing
//! module's Δt estimate responds to the volatility band.
//!
//! ```sh
//! cargo run --release --example volatility_explorer
//! ```

use v_mlp::core::organizer::OrganizerPolicy;
use v_mlp::prelude::*;
use v_mlp::sched::PlanEnv;
use v_mlp::trace::{ExecutionCase, ProfileStore};

fn main() {
    let catalog = RequestCatalog::paper();

    for rt in &catalog.requests {
        let v = Volatility::new(rt.volatility);
        println!("{} — V_r = {:.2} ({:?} band)", rt.name, v.value(), v.band());
        for node in rt.dag.nodes() {
            let s = catalog.services.get(node.service);
            println!(
                "    {:24} I={} S={} C={}  → I·S·C = {:2}",
                s.name,
                s.inner.level(),
                s.sensitivity.level(),
                s.comm.level(),
                s.inner.level() as u32 * s.sensitivity.level() as u32 * s.comm.level() as u32,
            );
        }
        println!();
    }

    // Δt banding demo: the same service history produces different budgets
    // depending on the requesting stream's volatility.
    let svc = catalog.services.by_name("ts-travel-service").unwrap().clone();
    let mut profiles = ProfileStore::new();
    let mut rng = v_mlp::sim::SimRng::new(7);
    for _ in 0..500 {
        profiles.record(
            svc.id,
            ExecutionCase {
                usage: svc.demand,
                machine_load: 0.4,
                exec_ms: svc.sample_exec_ms(1.0, rng.rng()),
            },
        );
    }
    let net = v_mlp::net::NetworkModel::paper_default();
    let ctx = PlanEnv {
        now: v_mlp::sim::SimTime::ZERO,
        profiles: &profiles,
        catalog: &catalog,
        net: &net,
    };
    println!("Δt budgets for {} (500 historical cases, nominal {} ms):", svc.name, svc.base_ms);
    for vr in [0.2, 0.5, 0.8] {
        let policy = OrganizerPolicy::new(Volatility::new(vr));
        let dt = policy.delta_t_ms(&svc, 1.0, &ctx);
        println!("    V_r = {vr:.1} ({:?}) → Δt = {dt:.1} ms", Volatility::new(vr).band());
    }
    println!("\n(low uses the most recent observation, medium the median, high the p99 —\n Algorithm 1's conservative-with-volatility rule)");
}
